#include "scenario/scenario.hpp"

#include <cmath>
#include <ostream>
#include <span>
#include <unordered_map>

#include "common/memstat.hpp"

#include "peer/population.hpp"
#include "peer/top_peer.hpp"
#include "scenario/calibration.hpp"
#include "server/server.hpp"
#include "sim/diurnal.hpp"

namespace edhp::scenario {
namespace {

/// Shared wiring of one measurement run.
struct World {
  sim::Simulation simulation;
  net::Network network;
  sim::DiurnalProfile diurnal = sim::DiurnalProfile::european_2008();
  peer::FileCatalog catalog;
  peer::SharedBlacklist blacklist;
  peer::BehaviorParams params;
  peer::SourceCache source_cache;
  std::unordered_map<std::uint32_t, double> source_weights;

  World(std::uint64_t seed, const peer::BehaviorParams& behavior, double scale,
        const net::LinkModel& link = {})
      : simulation(seed),
        network(simulation, link),
        catalog(catalog_2008(), simulation.rng().split(0xCA7A)),
        // The penalty models the *fraction* of the community a published
        // detection reaches, so the product (reports x penalty) must be
        // scale-invariant: fewer simulated peers, louder each report.
        blacklist(behavior.gossip_penalty / std::max(scale, 1e-6)),
        params(behavior) {}

  [[nodiscard]] peer::PeerContext context(net::NodeId server_node) {
    peer::PeerContext ctx;
    ctx.net = &network;
    ctx.server_node = server_node;
    ctx.server_port = 4661;
    ctx.blacklist = &blacklist;
    ctx.catalog = &catalog;
    ctx.params = &params;
    ctx.diurnal = &diurnal;
    ctx.source_weights = &source_weights;
    ctx.source_cache = &source_cache;
    return ctx;
  }
};

/// Project the chaos link knobs onto the network's link model. All-default
/// knobs yield the default model (no extra RNG draws), so link-clean runs
/// are bit-identical to a build without the projection.
net::LinkModel link_model(const fault::ChaosConfig& chaos) {
  net::LinkModel m;
  m.ge_p_enter_bad = chaos.link_burst_enter;
  m.ge_p_exit_bad = chaos.link_burst_exit;
  m.ge_loss_bad = chaos.link_burst_loss;
  m.datagram_dup = chaos.link_dup;
  m.datagram_reorder = chaos.link_reorder;
  m.reorder_delay = chaos.link_reorder_delay;
  return m;
}

/// Tracks the control-plane outage window a fault plan opens via the
/// crash_manager binding, so teardown can recover (or account the loss).
struct ManagerOutage {
  Time down_at = -1.0;        ///< sim time of the open crash, -1 when up
  std::uint64_t crashes = 0;  ///< manager crashes delivered by the plan
};

void fill_result(ScenarioResult& result, World& world,
                 const honeypot::Manager& manager,
                 const peer::Population& population,
                 bool durable_merge = false) {
  // After any control-plane crash the published dataset is what the durable
  // pipeline (journal-acked chunk store + salvaged local spools) yields —
  // the run's headline claim is that it matches the live merge bit-for-bit.
  result.merged = durable_merge
                      ? manager.merged_anonymized_durable(&result.distinct_peers)
                      : manager.merged_anonymized(&result.distinct_peers);
  // The merge above is what fills the timestamp-integrity ledger; read it
  // only afterwards.
  result.time_integrity = manager.time_integrity();
  result.observed = manager.observed_files();
  result.relaunches = manager.relaunches();
  result.peer_totals = population.totals();
  result.recovery = manager.recovery_stats();
  result.engine = world.simulation.stats();
  result.net_totals = world.network.totals();
  result.sim_events = result.engine.events_executed;
  result.wire_messages = result.net_totals.messages_delivered;
  result.wire_bytes = result.net_totals.bytes_delivered;

  result.population_arrivals = population.arrivals();
  result.population_peak_active = population.peak_active();
  result.population_slab_slots = population.slab_capacity();
  result.net_peak_live_nodes = world.network.peak_live_node_count();
  result.net_nodes_retired = world.network.nodes_retired();
  // Stream-mode accounting: sum the counts, chain the per-honeypot
  // fingerprints (in fleet order) into one run fingerprint.
  std::uint64_t sf = 1469598103934665603ull;
  for (std::size_t h = 0; h < manager.fleet_size(); ++h) {
    const honeypot::Honeypot& hp = manager.honeypot(h);
    result.records_streamed += hp.records_streamed();
    sf ^= hp.stream_fingerprint();
    sf *= 1099511628211ull;
  }
  result.stream_fingerprint = sf;
  result.peak_rss_bytes = peak_rss_bytes();
}

/// Fill the conservation ledger from counters every subsystem already
/// keeps, then hard-fail an audited imbalance. `hosts` must cover every
/// honeypot ever launched — the scenarios' stable pointers do, fleet and
/// orphans alike, since a manager crash moves the owning unique_ptr but
/// never the Honeypot object. `durable` mirrors the merge path fill_result
/// took. Call after every other result field is final (degrade, streamed
/// and merged all feed the equation).
void finalize_audit(ScenarioResult& result, const honeypot::Manager& manager,
                    std::span<honeypot::Honeypot* const> hosts, bool durable,
                    bool enforce) {
  auto& a = result.audit;
  a.enabled = enforce;
  a.records_merged = result.merged.records.size();
  a.records_shed = result.degrade.records_shed;
  a.records_excluded = manager.records_excluded_last_merge();
  a.records_streamed = result.records_streamed;
  for (const auto* hp : hosts) {
    a.records_born += hp->records_born();
    a.records_lost_tail += hp->records_lost_tail();
    // In-memory tails reach a live merge but not a durable salvage: they
    // are an accounted (spool-period-bounded) loss only on that path.
    if (durable) a.records_unflushed += hp->unspooled_tail();
  }
  if (durable) {
    a.records_quarantined = manager.records_quarantined_last_merge();
  }
  audit::enforce(a);
}

/// The defense policy a run actually applies: an explicit request wins;
/// otherwise abuse campaigns get the tuned policy unless the ablation
/// baseline (`auto_defense == false`) asked to fight bare-handed.
net::DefenseConfig effective_defense(const net::DefenseConfig& requested,
                                     const fault::AbuseConfig& abuse,
                                     bool auto_defense) {
  if (requested.enabled) return requested;
  if (abuse.enabled && auto_defense) return abuse_defense_config();
  return requested;
}

void report_progress(std::ostream* progress, World& world, double total_days) {
  if (progress == nullptr) return;
  *progress << "  day " << day_index(world.simulation.now()) << "/"
            << static_cast<int>(total_days) << ", events "
            << world.simulation.executed() << "\n";
}

}  // namespace

honeypot::ManagerConfig chaos_manager_config(const fault::ChaosConfig& chaos) {
  honeypot::ManagerConfig mc;
  if (chaos.byzantine.enabled && chaos.byzantine.defend) {
    // Quarantine policy rides with the Byzantine model, independent of the
    // crash/outage switch: a lying server is a threat even in an otherwise
    // healthy run. Byzantine-only campaigns still get a journal so probe
    // verdicts and quarantine decisions leave an auditable trail (appends
    // consume no RNG draws and schedule no events).
    mc.quarantine_threshold = chaos.byzantine.quarantine_threshold;
    mc.quarantine_cooloff = chaos.byzantine.quarantine_cooloff;
    if (!chaos.enabled) {
      mc.journal = std::make_shared<logbook::Journal>();
    }
  }
  if (!chaos.enabled) return mc;
  mc.relaunch_backoff_base = minutes(10);
  mc.relaunch_backoff_cap = hours(2);
  mc.escalate_after = 3;
  mc.heartbeat_timeout = chaos.heartbeat_timeout;
  mc.retry.enabled = true;
  mc.retry.base = chaos.retry_base;
  mc.retry.cap = chaos.retry_cap;
  mc.retry.max_retries = chaos.retry_max;
  mc.spool.enabled = true;
  mc.spool.period = chaos.spool_period;
  mc.resend_credit = chaos.resend_credit;
  // Control-plane durability: the write-ahead journal and the chunk store
  // live outside the Manager object, modelling the fsync'd files that
  // survive a control-plane crash. Appending to the journal consumes no
  // RNG draws and schedules no events, so chaos schedules are unchanged.
  mc.journal = std::make_shared<logbook::Journal>();
  mc.spool_store = std::make_shared<logbook::SpoolStore>();
  // Clock tracking rides with the clock fault knobs: sightings are recorded
  // on exchanges that happen anyway (status polls, fresh spool cuts), so
  // enabling it consumes no RNG draws and schedules no events.
  mc.track_clocks = chaos.clock_drift_mtbf > 0 || chaos.clock_step_mtbf > 0 ||
                    chaos.clock_freeze_mtbf > 0;
  return mc;
}

net::DefenseConfig abuse_defense_config() {
  // The DefenseConfig defaults ARE the tuned policy (they are calibrated
  // against the default abuse mix in test_abuse.cpp); this helper only
  // switches them on.
  net::DefenseConfig d;
  d.enabled = true;
  return d;
}

DistributedConfig::DistributedConfig() : behavior(behavior_2008()) {}

GreedyConfig::GreedyConfig() : behavior(behavior_2008()) {
  // Among thousands of harvested files, clients typically want several from
  // the same provider (Figs 11/12 imply ~3.6 files per observed peer).
  behavior.secondary_targets_mean = 4.0;
}

ScenarioResult run_distributed(const DistributedConfig& config,
                               std::ostream* progress) {
  World world(config.seed, config.behavior, config.scale,
              link_model(config.chaos));
  if (config.diurnal) {
    world.diurnal = *config.diurnal;
  }
  auto& rng = world.simulation.rng();

  const net::DefenseConfig defense =
      effective_defense(config.defense, config.abuse, config.auto_defense);

  // The large server all honeypots connect to.
  const auto server_node = world.network.add_node(true);
  server::ServerConfig server_cfg;
  server_cfg.defense = defense;
  server::Server server(world.network, server_node, server_cfg);
  server.start();
  honeypot::ServerRef server_ref{server_node, "big-server-2008", 4661};

  // Standby servers for watchdog escalation and Byzantine quarantine
  // (chaos/byzantine runs only: adding nodes would shift every later IP
  // assignment otherwise).
  std::vector<std::unique_ptr<server::Server>> standby;
  std::vector<honeypot::ServerRef> standby_refs;
  if (config.chaos.enabled || config.chaos.byzantine.enabled) {
    for (std::size_t s = 0; s < config.chaos.backup_servers; ++s) {
      const auto node = world.network.add_node(true);
      server::ServerConfig sc;
      sc.name = "standby-" + std::to_string(s);
      sc.defense = defense;
      standby.push_back(std::make_unique<server::Server>(world.network, node, sc));
      standby.back()->start();
      standby_refs.push_back(honeypot::ServerRef{node, sc.name, 4661});
    }
  }

  // Fleet: PlanetLab-like hosts; first half no-content, second half
  // random-content (the paper's 12/12 split).
  honeypot::ManagerConfig manager_cfg = chaos_manager_config(config.chaos);
  manager_cfg.defense = defense;
  honeypot::Manager manager(world.network, manager_cfg);
  if (!standby_refs.empty()) {
    manager.set_backup_servers(standby_refs);
  }
  ScenarioResult result;
  result.honeypots = config.honeypots;
  result.days = config.days;
  result.random_content.resize(config.honeypots);
  // Visibility weights are drawn once per host *pair* (one no-content, one
  // random-content honeypot share each draw), so the two strategy groups
  // have identical weight profiles and the Fig 5/6 gap isolates the
  // blacklisting effect instead of host heterogeneity.
  Rng weight_rng = rng.split(0xBEEF);
  const std::size_t half = std::max<std::size_t>(1, config.honeypots / 2);
  std::vector<double> pair_weights(half);
  for (auto& w : pair_weights) {
    w = weight_rng.lognormal(0.0, config.behavior.source_weight_sigma);
  }
  // Stable host handles for fault bindings and end-of-run sweeps: honeypot
  // objects outlive manager crashes (they are parked as orphans), so these
  // pointers stay valid even while the manager's fleet table is down.
  std::vector<honeypot::Honeypot*> hosts;
  hosts.reserve(config.honeypots);
  for (std::size_t h = 0; h < config.honeypots; ++h) {
    const bool random_content = h >= config.honeypots / 2;
    result.random_content[h] = random_content;
    honeypot::HoneypotConfig hp;
    hp.id = static_cast<std::uint16_t>(h);
    hp.name = "hp-" + std::to_string(h);
    hp.strategy = random_content ? honeypot::ContentStrategy::random_content
                                 : honeypot::ContentStrategy::no_content;
    hp.harvest_shared_lists = true;
    // Resource budgets: zero ceilings are exact no-ops, so unconditional
    // assignment keeps the budget-free goldens bit-identical.
    hp.budget.disk_quota_bytes = config.chaos.disk_quota_bytes;
    hp.budget.mem_budget_records = config.chaos.mem_budget_records;
    hp.budget.session_ceiling = config.chaos.session_ceiling;
    hp.budget.policy = config.chaos.degrade_policy;
    hp.budget.shed_user_word = fault::kAbuseUserWord;
    hp.audit_selftest_drop = config.chaos.audit_selftest_drop;
    hp.stream_records = config.stream_records;
    if (config.chaos.byzantine.enabled && config.chaos.byzantine.defend) {
      hp.self_probe_period = config.chaos.byzantine.probe_period;
      hp.self_probe_timeout = config.chaos.byzantine.probe_timeout;
      hp.integrity_defense = true;
    }
    const auto host = world.network.add_node(true);
    const auto index = manager.launch(std::move(hp), host, server_ref);
    hosts.push_back(&manager.honeypot(index));
    // Per-honeypot visibility weight (uptime, bandwidth, position in
    // provider lists): drives the Fig 10 min/max spread.
    world.source_weights[world.network.info(host).ip.value()] =
        pair_weights[h % half];
  }
  manager.start();

  // The four advertised fake files.
  std::vector<honeypot::AdvertisedFile> files;
  Rng id_rng = rng.split(0xF11E);
  for (const auto& d : kDistributedFiles) {
    files.push_back(honeypot::AdvertisedFile{
        FileId::from_words(id_rng(), id_rng()), d.name, d.size});
  }
  // Give honeypots a moment to log in before advertising.
  world.simulation.run_until(30.0);
  manager.advertise_all(files);
  for (const auto& f : files) {
    result.advertised_ids.push_back(f.id);
  }
  result.advertised_files = files.size();

  // Interested-peer demand per file. A population override rescales every
  // file's finite pool pro-rata so the pools sum to the override, while the
  // arrival rates stay at the campaign baseline: the interested population
  // is how many peers *could* arrive, and since unarrived peers are pure
  // per-demand accounting, memory stays bounded by concurrency (rate x
  // lifetime) no matter how large the pool grows. Pools smaller than the
  // baseline bite earlier; pools larger never bite sooner.
  double pool_factor = 1.0;
  if (config.population_override > 0) {
    double scaled_total = 0;
    for (const auto& d : kDistributedFiles) {
      scaled_total += static_cast<double>(d.population) * config.scale;
    }
    pool_factor =
        static_cast<double>(config.population_override) / scaled_total;
  }
  peer::Population population(world.context(server_node), rng.split(0x90B),
                              config.population_mode);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& d = kDistributedFiles[i];
    peer::FileDemand demand;
    demand.file = files[i].id;
    demand.base_rate_per_day = d.rate_per_day * config.scale;
    demand.decay_per_day = d.decay_per_day;
    demand.population = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(d.population) * config.scale * pool_factor));
    demand.ramp_up = hours(6);  // server indexing + peers' re-query cadence
    population.add_demand(demand);
  }
  // Interested peers only find the honeypots once the server has indexed
  // and republished the OFFER-FILES lists; the paper saw its first query
  // after ~10 minutes.
  world.simulation.schedule_at(minutes(8),
                               [&population] { population.start(); });

  // Fault injection. The chaos path schedules a full seeded FaultPlan
  // (host crash/reboot windows, uplink outages, server restarts, latency
  // spikes, partitions); dead honeypots are respawned by the manager's
  // status poll, exactly the paper's relaunch mechanism. Without chaos the
  // historical hourly crash grid runs, bit-for-bit.
  std::unique_ptr<sim::PeriodicTimer> crash_timer;
  std::unique_ptr<fault::Injector> injector;
  ManagerOutage outage;
  if (config.chaos.enabled) {
    auto plan = fault::FaultPlan::generate(
        config.chaos, config.honeypots, 1, config.days * kDay,
        rng.split(config.chaos.seed));
    fault::Injector::Bindings bind;
    bind.host_count = config.honeypots;
    // Host bindings go through the stable pointers, not the manager's fleet
    // table: a host can crash or reboot while the control plane is down.
    bind.host_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.crash_host = [&hosts](std::size_t h) { hosts[h]->crash(); };
    // Resource-exhaustion faults go through the same stable pointers: a
    // disk can fill while the control plane is down.
    bind.disk_full = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::disk_full, active,
                                   magnitude);
    };
    bind.disk_slow = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::disk_slow, active,
                                   magnitude);
    };
    bind.mem_pressure = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::mem_pressure, active,
                                   magnitude);
    };
    bind.stop_server = [&server](std::size_t s) {
      if (s == 0) server.stop();
    };
    bind.start_server = [&server](std::size_t s) {
      if (s == 0) server.start();
    };
    bind.crash_manager = [&manager, &world, &outage] {
      outage.down_at = world.simulation.now();
      ++outage.crashes;
      manager.crash();
    };
    if (config.chaos.manager_recovery) {
      bind.recover_manager = [&manager, &outage] {
        manager.recover(outage.down_at);
        outage.down_at = -1.0;
      };
    }
    injector = std::make_unique<fault::Injector>(world.network, std::move(plan),
                                                 std::move(bind));
    injector->arm();
  } else if (config.host_mtbf > 0) {
    crash_timer = fault::Injector::legacy_crash_grid(
        world.simulation, config.host_mtbf,
        [&manager] { return manager.fleet_size(); },
        [&manager](std::size_t h) { manager.honeypot(h).crash(); },
        rng.split(0xDEAD));
    crash_timer->start();
  }

  // Adversarial traffic. The injector (and its hostile nodes) exists only
  // when abuse is enabled, so an abuse-free run allocates no extra nodes,
  // consumes no extra RNG draws, and stays bit-identical.
  std::unique_ptr<fault::AbuseInjector> abuse;
  if (config.abuse.enabled) {
    const Rng abuse_rng = rng.split(config.abuse.seed);
    auto plan = fault::AbusePlan::generate(config.abuse, config.honeypots, 1,
                                           config.days * kDay, abuse_rng);
    fault::AbuseInjector::Bindings bind;
    bind.honeypot_count = config.honeypots;
    bind.honeypot_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.server_count = 1;
    bind.server_node = [server_node](std::size_t) { return server_node; };
    abuse = std::make_unique<fault::AbuseInjector>(
        world.network, std::move(plan), config.abuse, std::move(bind),
        abuse_rng.split(0xEE));
    abuse->arm();
  }

  // Byzantine misbehavior: lie windows flipped on the live servers, liar
  // peers run against the honeypots. Gated exactly like abuse — disabled
  // means no liar nodes, no RNG draws, bit-identical runs.
  std::unique_ptr<fault::ByzantineInjector> byz;
  if (config.chaos.byzantine.enabled) {
    const Rng byz_rng = rng.split(config.chaos.byzantine.seed);
    auto plan = fault::ByzantinePlan::generate(
        config.chaos.byzantine, config.honeypots, 1 + standby.size(),
        config.days * kDay, byz_rng);
    fault::ByzantineInjector::Bindings bind;
    bind.honeypot_count = config.honeypots;
    bind.honeypot_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.server_count = 1 + standby.size();
    auto server_at = [&server, &standby](std::size_t s) -> server::Server& {
      return s == 0 ? server : *standby[s - 1];
    };
    bind.drop_offers = [server_at](std::size_t s, bool active) {
      server_at(s).set_drop_offers(active);
    };
    bind.truncate_offers = [server_at](std::size_t s, bool active,
                                       double keep) {
      server_at(s).set_truncate_offers(active, keep);
    };
    bind.stale_index = [server_at](std::size_t s, bool active) {
      server_at(s).set_stale_index(active);
    };
    bind.fabricate_sources = [server_at](std::size_t s, bool active,
                                         std::size_t count,
                                         std::uint64_t seed) {
      server_at(s).set_fabricate_sources(active, count, seed);
    };
    bind.corrupt_search = [server_at](std::size_t s, bool active,
                                      std::uint64_t seed) {
      server_at(s).set_corrupt_search(active, seed);
    };
    bind.advertised_files = [&hosts](std::size_t h) {
      std::vector<proto::PublishedFile> out;
      for (const auto& f : hosts[h]->advertised()) {
        proto::PublishedFile pf;
        pf.file = f.id;
        pf.port = 4662;
        pf.name = f.name;
        pf.size = f.size;
        out.push_back(std::move(pf));
      }
      return out;
    };
    byz = std::make_unique<fault::ByzantineInjector>(
        world.network, std::move(plan), config.chaos.byzantine,
        std::move(bind), byz_rng.split(fault::splits::kByzContent));
    byz->arm();
  }

  // The single hyperactive peer of Figs 8/9.
  std::unique_ptr<peer::TopPeer> top;
  if (config.with_top_peer) {
    Rng top_rng = rng.split(0x709);
    peer::PeerProfile profile =
        peer::sample_profile(top_rng, config.behavior, world.diurnal);
    profile.client_name = "MLDonkey 2.9";  // crawler-ish client
    top = std::make_unique<peer::TopPeer>(world.network, server_node, profile,
                                          files[0].id, peer::TopPeerParams{},
                                          top_rng.split(7));
    world.simulation.schedule_at(hours(6), [&top] { top->start(); });
  }

  // Run the measurement day by day (progress + bounded queue growth).
  for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(config.days); ++d) {
    world.simulation.run_until((d + 1) * kDay);
    report_progress(progress, world, config.days);
  }
  world.simulation.run_until(config.days * kDay);

  population.stop();
  if (top) top->stop();

  result.blacklist_reports = world.blacklist.reports();
  double rep_nc = 0, rep_rc = 0;
  std::size_t n_nc = 0, n_rc = 0;
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    const auto ip = world.network.info(hosts[h]->node()).ip.value();
    const double rep = world.blacklist.reputation(ip);
    if (result.random_content[h]) {
      rep_rc += rep;
      ++n_rc;
    } else {
      rep_nc += rep;
      ++n_nc;
    }
  }
  if (n_nc > 0) result.reputation_no_content = rep_nc / static_cast<double>(n_nc);
  if (n_rc > 0) result.reputation_random_content = rep_rc / static_cast<double>(n_rc);

  // A crash window can reach past the horizon (its recover event is never
  // emitted). With recovery on, the restarted process replays the journal
  // now so the final gathering flushes every honeypot; with recovery off
  // the control plane stays dead and the run publishes what the durable
  // state alone can salvage.
  if (outage.down_at >= 0 && config.chaos.manager_recovery) {
    manager.recover(outage.down_at);
    outage.down_at = -1.0;
  }
  manager.stop();
  fill_result(result, world, manager, population, outage.crashes > 0);
  if (injector) {
    result.faults = injector->stats();
    result.recovery.manager_crashes = result.faults.manager_crashes;
  }
  if (outage.down_at >= 0) {
    result.recovery.manager_downtime +=
        world.simulation.now() - outage.down_at;
  }
  result.defense = manager.defense_stats();
  result.defense += server.defense_stats();
  for (const auto& s : standby) {
    result.defense += s->defense_stats();
  }
  for (const auto* hp : hosts) {
    result.degrade += hp->degrade_stats();
  }
  if (abuse) {
    result.abuse = abuse->stats();
  }
  if (byz) {
    result.byzantine = byz->stats();
  }
  // Integrity accounting is filled unconditionally (all-zero when the
  // Byzantine model is off); records_excluded was fixed by the merge above.
  result.integrity = manager.integrity_stats();
  finalize_audit(result, manager, hosts, outage.crashes > 0, config.audit);
  return result;
}

ScenarioResult run_greedy(const GreedyConfig& config, std::ostream* progress) {
  World world(config.seed, config.behavior, config.scale,
              link_model(config.chaos));
  auto& rng = world.simulation.rng();

  const net::DefenseConfig defense =
      effective_defense(config.defense, config.abuse, config.auto_defense);

  const auto server_node = world.network.add_node(true);
  server::ServerConfig server_cfg;
  server_cfg.defense = defense;
  server::Server server(world.network, server_node, server_cfg);
  server.start();
  honeypot::ServerRef server_ref{server_node, "big-server-2008", 4661};

  honeypot::ManagerConfig manager_cfg = chaos_manager_config(config.chaos);
  manager_cfg.defense = defense;
  honeypot::Manager manager(world.network, manager_cfg);
  honeypot::HoneypotConfig hp;
  hp.id = 0;
  hp.name = "hp-greedy";
  hp.strategy = honeypot::ContentStrategy::no_content;  // sent no content
  hp.harvest_shared_lists = true;
  hp.budget.disk_quota_bytes = config.chaos.disk_quota_bytes;
  hp.budget.mem_budget_records = config.chaos.mem_budget_records;
  hp.budget.session_ceiling = config.chaos.session_ceiling;
  hp.budget.policy = config.chaos.degrade_policy;
  hp.budget.shed_user_word = fault::kAbuseUserWord;
  hp.audit_selftest_drop = config.chaos.audit_selftest_drop;
  if (config.chaos.byzantine.enabled && config.chaos.byzantine.defend) {
    hp.self_probe_period = config.chaos.byzantine.probe_period;
    hp.self_probe_timeout = config.chaos.byzantine.probe_timeout;
    // integrity_defense stays OFF for the greedy strategy: it adopts the
    // very files it harvests from contacting peers, so the forged-list rule
    // (peer claims our own advertised hashes) would flag every honest
    // provider and break the harvest. Self-probes alone still catch the
    // server-side lies.
  }
  hp.greedy = true;
  hp.greedy_harvest_window = config.harvest_window;
  hp.greedy_max_files = std::max<std::size_t>(
      kGreedyAdvertisedFloor,
      static_cast<std::size_t>(
          std::llround(static_cast<double>(kGreedyAdvertisedFiles) * config.scale)));
  const auto host = world.network.add_node(true);
  manager.launch(std::move(hp), host, server_ref);
  // Stable handle: survives manager crashes (see run_distributed).
  honeypot::Honeypot* hp0 = &manager.honeypot(0);
  manager.start();

  ScenarioResult result;
  result.honeypots = 1;
  result.days = config.days;
  result.random_content = {false};

  // Seed files from the catalog.
  std::vector<honeypot::AdvertisedFile> seeds;
  for (const auto rank : kGreedySeeds) {
    const auto& f = world.catalog.at(rank);
    seeds.push_back(honeypot::AdvertisedFile{f.id, f.name, f.size});
  }
  world.simulation.run_until(30.0);
  manager.advertise(0, seeds);

  // Fault injection for the chaos variant (single host, single server).
  std::unique_ptr<fault::Injector> injector;
  ManagerOutage outage;
  if (config.chaos.enabled) {
    auto plan = fault::FaultPlan::generate(config.chaos, 1, 1,
                                           config.days * kDay,
                                           rng.split(config.chaos.seed));
    fault::Injector::Bindings bind;
    bind.host_count = 1;
    bind.host_node = [hp0](std::size_t) { return hp0->node(); };
    bind.crash_host = [hp0](std::size_t) { hp0->crash(); };
    bind.disk_full = [hp0](std::size_t, bool active, double magnitude) {
      hp0->set_resource_fault(budget::ResourceFault::disk_full, active,
                              magnitude);
    };
    bind.disk_slow = [hp0](std::size_t, bool active, double magnitude) {
      hp0->set_resource_fault(budget::ResourceFault::disk_slow, active,
                              magnitude);
    };
    bind.mem_pressure = [hp0](std::size_t, bool active, double magnitude) {
      hp0->set_resource_fault(budget::ResourceFault::mem_pressure, active,
                              magnitude);
    };
    bind.stop_server = [&server](std::size_t) { server.stop(); };
    bind.start_server = [&server](std::size_t) { server.start(); };
    bind.crash_manager = [&manager, &world, &outage] {
      outage.down_at = world.simulation.now();
      ++outage.crashes;
      manager.crash();
    };
    if (config.chaos.manager_recovery) {
      bind.recover_manager = [&manager, &outage] {
        manager.recover(outage.down_at);
        outage.down_at = -1.0;
      };
    }
    injector = std::make_unique<fault::Injector>(world.network, std::move(plan),
                                                 std::move(bind));
    injector->arm();
  }

  // Adversarial traffic (see run_distributed).
  std::unique_ptr<fault::AbuseInjector> abuse;
  if (config.abuse.enabled) {
    const Rng abuse_rng = rng.split(config.abuse.seed);
    auto plan = fault::AbusePlan::generate(config.abuse, 1, 1,
                                           config.days * kDay, abuse_rng);
    fault::AbuseInjector::Bindings bind;
    bind.honeypot_count = 1;
    bind.honeypot_node = [hp0](std::size_t) { return hp0->node(); };
    bind.server_count = 1;
    bind.server_node = [server_node](std::size_t) { return server_node; };
    abuse = std::make_unique<fault::AbuseInjector>(
        world.network, std::move(plan), config.abuse, std::move(bind),
        abuse_rng.split(0xEE));
    abuse->arm();
  }

  // Byzantine misbehavior (see run_distributed): one server, one honeypot.
  std::unique_ptr<fault::ByzantineInjector> byz;
  if (config.chaos.byzantine.enabled) {
    const Rng byz_rng = rng.split(config.chaos.byzantine.seed);
    auto plan = fault::ByzantinePlan::generate(config.chaos.byzantine, 1, 1,
                                               config.days * kDay, byz_rng);
    fault::ByzantineInjector::Bindings bind;
    bind.honeypot_count = 1;
    bind.honeypot_node = [hp0](std::size_t) { return hp0->node(); };
    bind.server_count = 1;
    bind.drop_offers = [&server](std::size_t, bool active) {
      server.set_drop_offers(active);
    };
    bind.truncate_offers = [&server](std::size_t, bool active, double keep) {
      server.set_truncate_offers(active, keep);
    };
    bind.stale_index = [&server](std::size_t, bool active) {
      server.set_stale_index(active);
    };
    bind.fabricate_sources = [&server](std::size_t, bool active,
                                       std::size_t count, std::uint64_t seed) {
      server.set_fabricate_sources(active, count, seed);
    };
    bind.corrupt_search = [&server](std::size_t, bool active,
                                    std::uint64_t seed) {
      server.set_corrupt_search(active, seed);
    };
    bind.advertised_files = [hp0](std::size_t) {
      std::vector<proto::PublishedFile> out;
      for (const auto& f : hp0->advertised()) {
        proto::PublishedFile pf;
        pf.file = f.id;
        pf.port = 4662;
        pf.name = f.name;
        pf.size = f.size;
        out.push_back(std::move(pf));
      }
      return out;
    };
    byz = std::make_unique<fault::ByzantineInjector>(
        world.network, std::move(plan), config.chaos.byzantine,
        std::move(bind), byz_rng.split(fault::splits::kByzContent));
    byz->arm();
  }

  // Demands follow the advertised list as it grows: a watcher adds a demand
  // for every newly advertised file. Per-file demand is a property of the
  // network (not of the honeypot) and is NOT scaled: the greedy measurement
  // scales through the size of the harvested list instead.
  peer::Population population(world.context(server_node), rng.split(0x90B),
                              config.population_mode);
  Rng demand_rng = rng.split(0xDE3A);
  std::size_t demanded = 0;
  auto sync_demands = [&] {
    // Through the stable handle: the watcher keeps firing during a
    // control-plane outage, when the manager's fleet table is empty.
    const auto& advertised = hp0->advertised();
    while (demanded < advertised.size()) {
      const auto& file = advertised[demanded];
      ++demanded;
      const double peers_over_run = demand_rng.lognormal(
          kGreedyPeersPerFileMu, kGreedyPeersPerFileSigma);
      peer::FileDemand demand;
      demand.file = file.id;
      demand.base_rate_per_day = peers_over_run / config.days;
      demand.decay_per_day = 0.0;  // stable inflow (Fig 3)
      demand.population = static_cast<std::uint64_t>(
          std::llround(peers_over_run * kGreedyPoolFactor));
      // Fresh advertisements are noticed gradually: this keeps day 1 (the
      // harvest phase) nearly invisible in Fig 3, as the paper observed.
      demand.ramp_up = hours(20);
      population.add_demand(demand);
    }
  };
  sync_demands();
  sim::PeriodicTimer demand_watcher(world.simulation, minutes(10), sync_demands);
  demand_watcher.start();
  population.start();

  for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(config.days); ++d) {
    world.simulation.run_until((d + 1) * kDay);
    report_progress(progress, world, config.days);
  }
  world.simulation.run_until(config.days * kDay);

  demand_watcher.stop();
  population.stop();
  if (outage.down_at >= 0 && config.chaos.manager_recovery) {
    manager.recover(outage.down_at);
    outage.down_at = -1.0;
  }
  manager.stop();

  result.advertised_files = hp0->advertised().size();
  for (const auto& f : hp0->advertised()) {
    result.advertised_ids.push_back(f.id);
  }
  fill_result(result, world, manager, population, outage.crashes > 0);
  if (injector) {
    result.faults = injector->stats();
    result.recovery.manager_crashes = result.faults.manager_crashes;
  }
  if (outage.down_at >= 0) {
    result.recovery.manager_downtime +=
        world.simulation.now() - outage.down_at;
  }
  result.defense = manager.defense_stats();
  result.defense += server.defense_stats();
  result.degrade += hp0->degrade_stats();
  if (abuse) {
    result.abuse = abuse->stats();
  }
  if (byz) {
    result.byzantine = byz->stats();
  }
  result.integrity = manager.integrity_stats();
  honeypot::Honeypot* const greedy_hosts[] = {hp0};
  finalize_audit(result, manager, greedy_hosts, outage.crashes > 0,
                 config.audit);
  return result;
}

std::function<bool(std::uint16_t)> strategy_filter(const ScenarioResult& result,
                                                   bool random_content) {
  std::vector<bool> mask = result.random_content;
  return [mask, random_content](std::uint16_t h) {
    return h < mask.size() && mask[h] == random_content;
  };
}

}  // namespace edhp::scenario
