#include "common/ids.hpp"

namespace edhp {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (auto b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

template <typename Tag>
std::string Hash128<Tag>::hex() const {
  return to_hex(bytes_);
}

template std::string Hash128<FileTag>::hex() const;
template std::string Hash128<UserTag>::hex() const;

std::string IpAddr::str() const {
  return std::to_string((value_ >> 24) & 0xFF) + "." +
         std::to_string((value_ >> 16) & 0xFF) + "." +
         std::to_string((value_ >> 8) & 0xFF) + "." + std::to_string(value_ & 0xFF);
}

}  // namespace edhp
