#pragma once
// Strong identifier types used throughout the platform.
//
// eDonkey identifies files and users by 128-bit MD4 digests and peers within
// a server session by a 32-bit clientID: the peer's IPv4 address when it is
// directly reachable (HighID) or a value below 0x1000000 otherwise (LowID).

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace edhp {

/// 128-bit identifier (an MD4 digest) with a type tag so FileId and UserId
/// cannot be mixed up at compile time.
template <typename Tag>
class Hash128 {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Hash128() = default;
  constexpr explicit Hash128(const Bytes& b) : bytes_(b) {}

  /// Construct from two 64-bit words (handy for synthetic ids in tests and
  /// the simulator); word order is little-endian like the wire format.
  static constexpr Hash128 from_words(std::uint64_t lo, std::uint64_t hi) {
    Bytes b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((lo >> (8 * i)) & 0xFF);
      b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>((hi >> (8 * i)) & 0xFF);
    }
    return Hash128(b);
  }

  [[nodiscard]] constexpr const Bytes& bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  /// Lowercase hex string, e.g. "31d6cfe0d16ae931b73c59d7e0c089c0".
  [[nodiscard]] std::string hex() const;

  friend constexpr auto operator<=>(const Hash128&, const Hash128&) = default;

 private:
  Bytes bytes_{};
};

struct FileTag {};
struct UserTag {};

/// Identifier of a file's content (MD4-based); identical content implies
/// identical FileId regardless of name.
using FileId = Hash128<FileTag>;
/// Persistent user hash identifying a client across sessions.
using UserId = Hash128<UserTag>;

/// IPv4 address in host byte order with dotted-quad formatting.
class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : value_(v) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Server-assigned session identifier. LowIDs are below kLowIdThreshold.
class ClientId {
 public:
  static constexpr std::uint32_t kLowIdThreshold = 0x1000000;  // 2^24

  constexpr ClientId() = default;
  constexpr explicit ClientId(std::uint32_t v) : value_(v) {}

  /// A directly reachable peer's clientID is its IP address.
  static constexpr ClientId high(IpAddr ip) { return ClientId(ip.value()); }

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool is_low() const noexcept {
    return value_ < kLowIdThreshold;
  }
  [[nodiscard]] constexpr bool is_high() const noexcept { return !is_low(); }

  friend constexpr auto operator<=>(const ClientId&, const ClientId&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// FNV-1a over the digest bytes; good enough for hash-map keys, not security.
template <typename Tag>
struct Hash128Hasher {
  std::size_t operator()(const Hash128<Tag>& h) const noexcept {
    std::uint64_t x = 0xcbf29ce484222325ull;
    for (auto b : h.bytes()) {
      x = (x ^ b) * 0x100000001b3ull;
    }
    return static_cast<std::size_t>(x);
  }
};

using FileIdHasher = Hash128Hasher<FileTag>;
using UserIdHasher = Hash128Hasher<UserTag>;

/// Lowercase hex of arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace edhp

template <typename Tag>
struct std::hash<edhp::Hash128<Tag>> : edhp::Hash128Hasher<Tag> {};

template <>
struct std::hash<edhp::IpAddr> {
  std::size_t operator()(const edhp::IpAddr& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
