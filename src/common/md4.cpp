#include "common/md4.hpp"

#include <cstring>

namespace edhp {
namespace {

inline std::uint32_t rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}
inline std::uint32_t F(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) | (~x & z);
}
inline std::uint32_t G(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) | (x & z) | (y & z);
}
inline std::uint32_t H(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return x ^ y ^ z;
}

}  // namespace

void Md4::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  length_ = 0;
  buffered_ = 0;
}

void Md4::compress(const std::uint8_t* block) {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  auto round1 = [&](std::uint32_t& p, std::uint32_t q, std::uint32_t r,
                    std::uint32_t s, int k, int sh) {
    p = rotl(p + F(q, r, s) + x[k], sh);
  };
  auto round2 = [&](std::uint32_t& p, std::uint32_t q, std::uint32_t r,
                    std::uint32_t s, int k, int sh) {
    p = rotl(p + G(q, r, s) + x[k] + 0x5a827999u, sh);
  };
  auto round3 = [&](std::uint32_t& p, std::uint32_t q, std::uint32_t r,
                    std::uint32_t s, int k, int sh) {
    p = rotl(p + H(q, r, s) + x[k] + 0x6ed9eba1u, sh);
  };

  for (int i = 0; i < 4; ++i) {
    round1(a, b, c, d, 4 * i + 0, 3);
    round1(d, a, b, c, 4 * i + 1, 7);
    round1(c, d, a, b, 4 * i + 2, 11);
    round1(b, c, d, a, 4 * i + 3, 19);
  }
  for (int i = 0; i < 4; ++i) {
    round2(a, b, c, d, i + 0, 3);
    round2(d, a, b, c, i + 4, 5);
    round2(c, d, a, b, i + 8, 9);
    round2(b, c, d, a, i + 12, 13);
  }
  static constexpr int kOrder3[4] = {0, 2, 1, 3};
  for (int i = 0; i < 4; ++i) {
    const int k = kOrder3[i];
    round3(a, b, c, d, k + 0, 3);
    round3(d, a, b, c, k + 8, 9);
    round3(c, d, a, b, k + 4, 11);
    round3(b, c, d, a, k + 12, 15);
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md4::update(std::span<const std::uint8_t> data) {
  length_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

void Md4::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Md4::Digest Md4::finish() {
  const std::uint64_t bit_length = length_ * 8;
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(std::span<const std::uint8_t>(kPad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>((bit_length >> (8 * i)) & 0xFF);
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest out{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(4 * i + j)] =
          static_cast<std::uint8_t>((state_[static_cast<std::size_t>(i)] >> (8 * j)) & 0xFF);
    }
  }
  return out;
}

Md4::Digest Md4::hash(std::span<const std::uint8_t> data) {
  Md4 h;
  h.update(data);
  return h.finish();
}

Md4::Digest Md4::hash(std::string_view data) {
  Md4 h;
  h.update(data);
  return h.finish();
}

}  // namespace edhp
