#include "common/budget.hpp"

#include <algorithm>

namespace edhp::budget {

std::string_view to_string(DegradePolicy p) {
  switch (p) {
    case DegradePolicy::off: return "off";
    case DegradePolicy::priority_shed: return "priority_shed";
  }
  return "unknown";
}

std::string_view to_string(ResourceFault f) {
  switch (f) {
    case ResourceFault::disk_full: return "disk_full";
    case ResourceFault::disk_slow: return "disk_slow";
    case ResourceFault::mem_pressure: return "mem_pressure";
  }
  return "unknown";
}

std::string_view to_string(DegradeReason r) {
  switch (r) {
    case DegradeReason::none: return "none";
    case DegradeReason::fault_disk_full: return "fault_disk_full";
    case DegradeReason::fault_disk_slow: return "fault_disk_slow";
    case DegradeReason::fault_mem_pressure: return "fault_mem_pressure";
    case DegradeReason::disk_quota: return "disk_quota";
    case DegradeReason::mem_budget: return "mem_budget";
  }
  return "unknown";
}

DegradeStats& DegradeStats::operator+=(const DegradeStats& other) noexcept {
  degrade_enters += other.degrade_enters;
  degrade_exits += other.degrade_exits;
  records_shed += other.records_shed;
  compaction_runs += other.compaction_runs;
  chunks_compacted += other.chunks_compacted;
  compaction_bytes_reclaimed += other.compaction_bytes_reclaimed;
  backpressure_cuts += other.backpressure_cuts;
  spool_cuts_deferred += other.spool_cuts_deferred;
  sessions_refused += other.sessions_refused;
  resends_paced += other.resends_paced;
  quota_overruns += other.quota_overruns;
  // A fleet sum keeps the worst single component's peak: the quota is
  // per-honeypot, so the max is what sizing decisions need.
  spool_peak_bytes = std::max(spool_peak_bytes, other.spool_peak_bytes);
  return *this;
}

}  // namespace edhp::budget
