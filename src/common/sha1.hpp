#pragma once
// SHA-1 (RFC 3174), used by the anonymisation pipeline as the stage-1
// cryptographic one-way function applied to IP addresses inside each
// honeypot before anything reaches disk or the manager.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace edhp {

/// Incremental SHA-1 hasher with the same interface shape as Md4.
class Sha1 {
 public:
  using Digest = std::array<std::uint8_t, 20>;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  [[nodiscard]] Digest finish();

  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t length_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace edhp
