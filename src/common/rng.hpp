#pragma once
// Deterministic random-number generation for the simulator and analysis.
//
// Uses xoshiro256** seeded via SplitMix64. Every component that needs
// randomness takes an explicit Rng (or derives one via Rng::split), so a
// scenario run is reproducible bit-for-bit from a single seed regardless of
// thread count or evaluation order of unrelated components.

#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

namespace edhp {

/// xoshiro256** engine with distribution helpers used across the project.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derive an independent child stream; deterministic in (parent state,
  /// stream id). The parent state is not advanced, so components can split
  /// stable sub-streams by id.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  std::uint64_t operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);
  /// True with probability p (clamped to [0,1]).
  bool chance(double p);
  /// Exponential with given mean (> 0).
  double exponential(double mean);
  /// Poisson-distributed count with given mean (>= 0).
  std::uint64_t poisson(double mean);
  /// Standard normal via Box–Muller (no cached spare: deterministic stream).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t next();

  std::uint64_t s_[4];
};

/// Discrete Zipf(alpha) sampler over ranks {0, .., n-1} with P(rank k)
/// proportional to 1/(k+1)^alpha. Precomputes the CDF once (O(n) memory) and
/// samples in O(log n); suitable for catalogs of a few million files.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace edhp
