#pragma once
// Bounds-checked little-endian byte buffer reader/writer.
//
// The eDonkey wire format is little-endian throughout; every protocol codec
// in edhp::proto is built on these two classes. Both throw DecodeError /
// never write out of bounds, so a malformed packet can never corrupt memory.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace edhp {

/// Thrown when a read runs past the end of a buffer or a length field is
/// inconsistent with the surrounding message.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian serializer producing a std::vector<std::uint8_t>.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Raw bytes, appended verbatim.
  void bytes(std::span<const std::uint8_t> v);

  /// eDonkey string: u16 length followed by raw bytes (no terminator).
  void str16(std::string_view s);

  /// Number of bytes written so far.
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Overwrite a previously written u32 at byte offset `at` (used to patch
  /// message-length fields after the payload is known).
  void patch_u32(std::size_t at, std::uint32_t v);

  [[nodiscard]] const std::vector<std::uint8_t>& view() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian deserializer over a borrowed buffer.
/// The underlying bytes must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();

  /// Read exactly n raw bytes.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

  /// eDonkey string: u16 length prefix then raw bytes.
  [[nodiscard]] std::string str16();

  /// Non-owning variant of str16(): the returned view borrows the reader's
  /// underlying buffer and is valid only as long as that buffer lives.
  [[nodiscard]] std::string_view str16_view();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  /// Throw DecodeError unless the whole buffer has been consumed.
  void expect_done(std::string_view context) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace edhp
