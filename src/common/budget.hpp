#pragma once
// Resource budgets and graceful-degradation accounting.
//
// The paper's platform runs on shared PlanetLab hosts: disk fills up under
// the spool, memory is rationed, and file descriptors are capped — yet the
// honeypots must keep logging HELLO/START-UPLOAD/REQUEST-PART evidence
// through all of it. This module holds the budget model shared by the data
// plane:
//
//   BudgetConfig  — per-component resource ceilings (byte-accounted spool
//                   quota, bounded unspooled record buffer, fd-style session
//                   ceiling) plus the degradation policy;
//   ByteBudget    — a byte accountant with quota/used/peak tracking;
//   DegradeStats  — counters of every declared degradation decision (shed,
//                   compaction, backpressure, pacing), summed fleet-wide
//                   into scenario::ScenarioResult.
//
// Degradation contract: when a budget trips, components shed by RECORD
// PRIORITY — evidence records (anything a benign peer produced) are never
// dropped; only low-priority traffic (abuse-marked records, re-offer
// chatter) is shed, and every shed record is counted. Zero silent loss:
// `records_shed` fully accounts the gap between a budget-limited run and
// the uninterrupted one.
//
// This header sits at the bottom of the link graph (edhp_common): it must
// not depend on logbook/net/fault types, so priority is expressed as a
// plain user-hash word (BudgetConfig::shed_user_word) the scenario wires to
// the abuse marker.

#include <cstdint>
#include <string_view>

namespace edhp::budget {

/// What a component does when a resource budget trips.
enum class DegradePolicy : std::uint8_t {
  off = 0,            ///< budgets are ignored (accounting only)
  priority_shed = 1,  ///< declared degraded mode: shed low-priority records,
                      ///< compact spool chunks, emit backpressure
};

[[nodiscard]] std::string_view to_string(DegradePolicy p);

/// Resource-exhaustion fault classes (subjects are honeypot hosts).
enum class ResourceFault : std::uint8_t {
  disk_full = 0,     ///< spool quota shrinks (or freezes) for an episode
  disk_slow = 1,     ///< spool cuts are throttled for an episode
  mem_pressure = 2,  ///< record buffer shrinks + session ceiling applies
};

[[nodiscard]] std::string_view to_string(ResourceFault f);

/// Why a component declared degraded mode (journaled with the transition).
/// Numeric values are part of the journal payload format: append only.
enum class DegradeReason : std::uint8_t {
  none = 0,
  fault_disk_full = 1,    ///< injected disk_full episode began
  fault_disk_slow = 2,    ///< injected disk_slow episode began
  fault_mem_pressure = 3, ///< injected mem_pressure episode began
  disk_quota = 4,         ///< organic: resident spool bytes over quota
  mem_budget = 5,         ///< organic: unspooled record tail over budget
};

[[nodiscard]] std::string_view to_string(DegradeReason r);

/// Per-component resource ceilings. Every 0 means "unlimited" — the
/// defaults reproduce the pre-budget data plane bit-for-bit.
struct BudgetConfig {
  /// Resident (spooled-but-unacknowledged) chunk bytes a honeypot may hold
  /// before the spool writer degrades into compaction + shedding. Soft for
  /// evidence records: they are kept even over quota (and the overrun is
  /// counted), because losing them silently would defeat the measurement.
  std::uint64_t disk_quota_bytes = 0;
  /// Unspooled log-tail records held in memory before backpressure forces
  /// an early chunk cut (or sheds a low-priority record at the source).
  std::uint64_t mem_budget_records = 0;
  /// Concurrent peer sessions accepted while a mem_pressure episode is
  /// active (the fd-limit analog under overload). 0 freezes the ceiling at
  /// the session count observed when the episode begins.
  std::uint32_t session_ceiling = 0;
  /// Records whose user hash equals this word are low priority and shed
  /// first (the scenario wires the abuse marker here). 0 = nothing is ever
  /// shed; budgets then only compact and backpressure.
  std::uint64_t shed_user_word = 0;
  DegradePolicy policy = DegradePolicy::priority_shed;

  /// True when any ceiling is set (degradation can trip organically).
  [[nodiscard]] bool any() const noexcept {
    return disk_quota_bytes != 0 || mem_budget_records != 0 ||
           session_ceiling != 0;
  }
};

/// Counters of every declared degradation decision. All zero when budgets
/// never trip and no resource fault fires.
struct DegradeStats {
  std::uint64_t degrade_enters = 0;   ///< degraded-mode transitions (in)
  std::uint64_t degrade_exits = 0;    ///< degraded-mode transitions (out)
  std::uint64_t records_shed = 0;     ///< low-priority records dropped, declared
  std::uint64_t compaction_runs = 0;  ///< spool compaction passes
  std::uint64_t chunks_compacted = 0; ///< chunks coalesced by compaction
  std::uint64_t compaction_bytes_reclaimed = 0;
  std::uint64_t backpressure_cuts = 0;   ///< early chunk cuts forced by the
                                         ///< record-buffer budget
  std::uint64_t spool_cuts_deferred = 0; ///< periodic cuts throttled by disk_slow
  std::uint64_t sessions_refused = 0;    ///< accepts refused at the ceiling
  std::uint64_t resends_paced = 0;       ///< chunk resends deferred by the
                                         ///< manager's credit window
  std::uint64_t quota_overruns = 0;      ///< evidence kept over quota (soft)
  std::uint64_t spool_peak_bytes = 0;    ///< max resident spool bytes seen

  DegradeStats& operator+=(const DegradeStats& other) noexcept;
};

/// Byte accountant for one quota'd resource. Quota 0 = unlimited; usage is
/// still tracked (and the peak recorded) so an episode can freeze it.
class ByteBudget {
 public:
  ByteBudget() = default;
  explicit ByteBudget(std::uint64_t quota) : quota_(quota) {}

  void set_quota(std::uint64_t quota) noexcept { quota_ = quota; }
  [[nodiscard]] std::uint64_t quota() const noexcept { return quota_; }
  [[nodiscard]] bool unlimited() const noexcept { return quota_ == 0; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    if (unlimited() || used_ >= quota_) return unlimited() ? ~0ull : 0;
    return quota_ - used_;
  }
  [[nodiscard]] bool over() const noexcept {
    return !unlimited() && used_ > quota_;
  }
  [[nodiscard]] bool would_exceed(std::uint64_t extra) const noexcept {
    return !unlimited() && used_ + extra > quota_;
  }

  void charge(std::uint64_t bytes) noexcept {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }
  /// Saturating: releasing more than is charged clamps to zero.
  void release(std::uint64_t bytes) noexcept {
    used_ = bytes >= used_ ? 0 : used_ - bytes;
  }

 private:
  std::uint64_t quota_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace edhp::budget
