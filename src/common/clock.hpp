#pragma once
// Simulated-time representation and calendar helpers.
//
// Simulation time is a double count of seconds since the start of the
// measurement. The measurement start is anchored at local midnight of the
// observed region (the paper's campaigns started on 1 Oct 2008 and 1 Nov
// 2008), so hour-of-day arithmetic needs only an offset.

#include <cmath>
#include <cstdint>

namespace edhp {

/// Seconds since the beginning of the measurement.
using Time = double;
/// A span of simulated seconds.
using Duration = double;

constexpr Duration kSecond = 1.0;
constexpr Duration kMinute = 60.0;
constexpr Duration kHour = 3600.0;
constexpr Duration kDay = 86400.0;
constexpr Duration kWeek = 7 * kDay;

constexpr Duration minutes(double m) { return m * kMinute; }
constexpr Duration hours(double h) { return h * kHour; }
constexpr Duration days(double d) { return d * kDay; }

/// Completed days since measurement start (0 during the first day).
inline std::uint32_t day_index(Time t) {
  return t < 0 ? 0 : static_cast<std::uint32_t>(t / kDay);
}

/// Completed hours since measurement start.
inline std::uint32_t hour_index(Time t) {
  return t < 0 ? 0 : static_cast<std::uint32_t>(t / kHour);
}

/// Local hour-of-day in [0, 24) for a region offset in hours relative to the
/// measurement's reference timezone (CET for the paper's campaigns).
inline double hour_of_day(Time t, double tz_offset_hours = 0.0) {
  double h = std::fmod(t / kHour + tz_offset_hours, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

/// Day-of-week index in [0, 7); the measurement is anchored so that day 0 is
/// a Wednesday (1 Oct 2008), matching the paper's distributed campaign.
inline std::uint32_t day_of_week(Time t) {
  return (day_index(t) + 2) % 7;  // 0 = Monday
}

}  // namespace edhp
