#include "common/sha1.hpp"

#include <cstring>

namespace edhp {
namespace {

inline std::uint32_t rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  length_ = 0;
  buffered_ = 0;
}

void Sha1::compress(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  length_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_length = length_ * 8;
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(std::span<const std::uint8_t>(kPad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>((bit_length >> (8 * (7 - i))) & 0xFF);
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest out{};
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(4 * i + j)] = static_cast<std::uint8_t>(
          (state_[static_cast<std::size_t>(i)] >> (8 * (3 - j))) & 0xFF);
    }
  }
  return out;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1::Digest Sha1::hash(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace edhp
