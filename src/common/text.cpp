#include "common/text.hpp"

#include <cctype>

namespace edhp {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    out.push_back(static_cast<char>(std::tolower(c)));
  }
  return out;
}

std::vector<std::string> tokenize(std::string_view s) {
  std::vector<std::string> words;
  std::string current;
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    words.push_back(std::move(current));
  }
  return words;
}

}  // namespace edhp
