#include "common/bytes.hpp"

namespace edhp {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    v >>= 8;
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    v >>= 8;
  }
}

void ByteWriter::bytes(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::str16(std::string_view s) {
  if (s.size() > 0xFFFF) {
    throw DecodeError("str16: string too long to serialize");
  }
  u16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u32(std::size_t at, std::uint32_t v) {
  if (at + 4 > buf_.size()) {
    throw DecodeError("patch_u32: offset out of range");
  }
  for (int i = 0; i < 4; ++i) {
    buf_[at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("ByteReader: truncated buffer (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str16() {
  return std::string(str16_view());
}

std::string_view ByteReader::str16_view() {
  const std::size_t n = u16();
  auto raw = bytes(n);
  return {reinterpret_cast<const char*>(raw.data()), raw.size()};
}

void ByteReader::expect_done(std::string_view context) const {
  if (!done()) {
    throw DecodeError(std::string(context) + ": " + std::to_string(remaining()) +
                      " trailing bytes");
  }
}

}  // namespace edhp
