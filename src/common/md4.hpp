#pragma once
// MD4 (RFC 1320). eDonkey identifies files and users by 128-bit MD4 digests:
// each 9,728,000-byte part is hashed with MD4 and, for multi-part files, the
// file hash is the MD4 of the concatenated part hashes. This implementation
// is from scratch and validated against the RFC test vectors.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace edhp {

/// Incremental MD4 hasher. Feed bytes with update(), read the digest with
/// finish(); a finished hasher can be reset() and reused.
class Md4 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md4() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalize and return the digest. The hasher must be reset() before reuse.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t length_ = 0;                  // total bytes fed
  std::array<std::uint8_t, 64> buffer_{};     // partial block
  std::size_t buffered_ = 0;
};

}  // namespace edhp
