#pragma once
// Process-memory introspection for the memory-telemetry fields benches and
// scenario results report. Linux: parsed from /proc/self/status (VmRSS /
// VmHWM, kB granularity). Elsewhere: getrusage ru_maxrss for the peak and 0
// for the current figure — callers must treat 0 as "unknown", not "empty".

#include <cstdint>

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace edhp {

#if defined(__linux__)
namespace detail {
/// Value of one `Vm...:` line of /proc/self/status, in bytes (0 if absent).
inline std::uint64_t proc_status_bytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      std::sscanf(line + field_len + 1, "%lu", &kb);  // NOLINT
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace detail
#endif

/// Current resident set size in bytes (0 when the platform can't tell).
inline std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  return detail::proc_status_bytes("VmRSS");
#else
  return 0;
#endif
}

/// Peak resident set size in bytes since process start (0 if unknown).
inline std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  if (const auto hwm = detail::proc_status_bytes("VmHWM"); hwm != 0) {
    return hwm;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

}  // namespace edhp
