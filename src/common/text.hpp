#pragma once
// Small text helpers shared by the server's keyword index and the filename
// anonymiser: eDonkey clients and servers treat file names as sequences of
// words separated by any non-alphanumeric character.

#include <string>
#include <string_view>
#include <vector>

namespace edhp {

/// Lowercased copy (ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Split into lowercase words at non-alphanumeric boundaries; empty words
/// are dropped. "The.Best_Movie(2008)" -> {"the", "best", "movie", "2008"}.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view s);

}  // namespace edhp
