#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace edhp {
namespace {

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
  // xoshiro's all-zero state is a fixed point; splitmix64 output makes this
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the full parent state with the stream id so distinct ids yield
  // independent streams even for adjacent ids.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  std::uint64_t x = mix ^ (stream_id * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull);
  return Rng(splitmix64(x));
}

double Rng::uniform() {
  // 53-bit mantissa, uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument("Rng::below(0)");
  }
  // Lemire's nearly-divisionless bounded sampling with rejection.
  while (true) {
    const std::uint64_t x = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
    const std::uint64_t threshold = (0 - n) % n;
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::between: lo > hi");
  }
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == std::numeric_limits<std::uint64_t>::max()) {
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span + 1));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("Rng::exponential: mean must be > 0");
  }
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) {
    throw std::invalid_argument("Rng::poisson: mean must be >= 0");
  }
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means; the
  // peer-arrival model only uses per-interval means where this is accurate.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Rng::pareto: xm and alpha must be > 0");
  }
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Rng::weighted: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted: all weights zero");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall back to last
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("Rng::sample_indices: k > n");
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the full index range.
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection into a hash set.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    std::size_t v = static_cast<std::size_t>(below(n));
    if (seen.insert(v).second) {
      out.push_back(v);
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: n must be > 0");
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) {
    c /= acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) {
    throw std::out_of_range("ZipfSampler::pmf: rank out of range");
  }
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace edhp
