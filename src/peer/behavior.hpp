#pragma once
// Calibration constants of the peer behaviour model.
//
// Every mechanism the paper names (source selection, re-asks, timeouts,
// content verification, client-level blacklisting, gossip) has its knobs
// here; scenario code (src/scenario/) instantiates them with values
// calibrated so the paper-scale runs reproduce the magnitudes of Table I
// and Figures 2-12. Tests use smaller, faster values.

#include <cstdint>

#include "common/clock.hpp"

namespace edhp::peer {

struct BehaviorParams {
  // --- Source selection ----------------------------------------------------
  /// Mean of the (1 + Poisson) number of sources a typical peer contacts
  /// out of a FOUND-SOURCES reply. Small values create the partial
  /// per-honeypot views behind Fig 10.
  double extra_sources_mean = 2.2;
  /// A minority of clients race many sources at once (heavy-tailed source
  /// counts); they make single-honeypot coverage high while the union curve
  /// keeps growing at n=24, as the paper observes.
  double aggressive_prob = 0.15;
  double aggressive_extra_mean = 14.0;
  /// Log-sigma of per-honeypot attractiveness weights (heterogeneous
  /// selection: some honeypots are seen by 3x more peers than others).
  double source_weight_sigma = 0.7;

  /// Fraction of arriving peers that learn their sources through peer
  /// exchange (community cache) instead of querying the server — these are
  /// the peers the paper notes "are not connected to the server".
  double pex_prob = 0.12;

  // --- Sessions --------------------------------------------------------------
  /// Mean number of download sessions a peer attempts before giving up.
  double sessions_mean = 8.0;
  /// Mean gap between sessions (diurnal-gated, so effective gaps cluster in
  /// daytime).
  Duration session_gap_mean = hours(4);
  /// Probability that a handshake leads to a START-UPLOAD in a session.
  double start_upload_prob = 0.72;
  /// Mean number of *additional* wanted files an uploader asks a provider
  /// about (Poisson). eMule clients check a source against their whole
  /// download list, which is why the per-file peer counts of Figs 11/12 sum
  /// to several times the number of distinct peers.
  double secondary_targets_mean = 4.0;

  // --- Transfers --------------------------------------------------------------
  /// Client timeout waiting for an answer to a REQUEST-PART.
  Duration request_timeout = 45.0;
  /// REQUEST-PART retries per source within one session (no-content path).
  std::uint32_t timeouts_per_session = 3;
  /// Consecutive timed-out sessions after which a no-content honeypot is
  /// considered dead by this client.
  std::uint32_t detect_after_timeouts = 8;
  /// Completed-but-corrupt parts after which a random-content honeypot is
  /// considered bogus (detecting invalid content takes longer than
  /// detecting silence: a whole part must be downloaded first).
  std::uint32_t detect_after_bad_parts = 2;
  /// Cap on REQUEST-PART rounds per session (random-content path).
  std::uint32_t max_rounds_per_session = 20;
  /// Probability of silently dropping a source after a fruitless session
  /// (no verified data): the user re-prioritises downloads, the client
  /// rotates sources. Unlike detection this publishes nothing.
  double abandon_per_session = 0.25;

  // --- Blacklisting ------------------------------------------------------------
  /// Probability a detection is "published" (forums, ipfilter updates,
  /// client-shared lists) and so affects other peers' source selection.
  /// Silence is an unambiguous signal; corrupt content is routinely blamed
  /// on transfer corruption instead of the provider, so it propagates far
  /// less — the root of the paper's Fig 5/6 gap.
  double gossip_prob_timeout = 0.30;
  double gossip_prob_bad_part = 0.06;
  /// Multiplicative reputation hit per published detection.
  double gossip_penalty = 6e-6;

  // --- Shared-file lists --------------------------------------------------------
  /// Probability the client answers ASK-SHARED-FILES (the feature can be
  /// disabled by the user).
  double share_list_prob = 0.35;
  /// Mean cache size (number of shared files, 1 + Poisson).
  double cache_size_mean = 60.0;

  // --- Population -------------------------------------------------------------
  /// Fraction of peers that are directly reachable (HighID).
  double high_id_fraction = 0.62;
  /// Mean client upload bandwidth in bytes/s (2008 ADSL).
  double upload_bps_mean = 80.0 * 1024;
};

}  // namespace edhp::peer
