#include "peer/top_peer.hpp"

#include "proto/filehash.hpp"

namespace edhp::peer {
namespace {

proto::RequestParts crawler_round(const FileId& file, std::uint64_t offset) {
  proto::RequestParts rp;
  rp.file = file;
  std::uint64_t begin = offset % proto::kPartSize;
  for (std::size_t i = 0; i < proto::kRequestPartRanges; ++i) {
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + proto::kBlockSize, proto::kPartSize);
    rp.begin[i] = static_cast<std::uint32_t>(begin);
    rp.end[i] = static_cast<std::uint32_t>(end);
    begin = end;
  }
  return rp;
}

}  // namespace

TopPeer::TopPeer(net::Network& network, net::NodeId server_node,
                 PeerProfile profile, FileId target, TopPeerParams params, Rng rng)
    : net_(network),
      server_node_(server_node),
      profile_(std::move(profile)),
      target_(target),
      params_(params),
      rng_(rng) {
  node_ = net_.add_node(profile_.reachable, profile_.tz_offset_hours,
                        profile_.upload_bps);
}

TopPeer::~TopPeer() { stop(); }

void TopPeer::start() {
  running_ = true;
  net_.connect(node_, server_node_, [this](net::EndpointPtr ep) {
    if (!ep || !running_) return;
    server_ep_ = std::move(ep);
    server_ep_->on_message([this](net::Bytes p) { on_server_message(std::move(p)); });

    proto::LoginRequest login;
    login.user = profile_.user;
    login.port = net_.info(node_).port;
    login.tags = {proto::Tag::string_tag(proto::kTagName, profile_.client_name),
                  proto::Tag::u32_tag(proto::kTagVersion, profile_.client_version)};
    server_ep_->send(proto::encode(proto::AnyMessage{std::move(login)}));
  });
  toggle_activity();
}

void TopPeer::stop() {
  running_ = false;
  if (server_ep_) {
    server_ep_->close();
    server_ep_.reset();
  }
  for (auto& e : encounters_) {
    if (e.endpoint) e.endpoint->close();
    net_.simulation().cancel(e.timeout);
  }
  encounters_.clear();
}

void TopPeer::on_server_message(net::Bytes packet) {
  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_server, packet, arena_);
  } catch (const DecodeError&) {
    net_.note_malformed(node_);
    return;
  }
  if (const auto* id = std::get_if<proto::IdChange>(&msg)) {
    client_id_ = id->client_id;
    server_ep_->send(proto::encode(proto::AnyMessage{proto::GetSources{target_}}));
    return;
  }
  if (const auto* found = std::get_if<proto::FoundSourcesView>(&msg)) {
    const auto learned = arena_.of(found->sources);
    sources_.assign(learned.begin(), learned.end());
    sources_stats_.clear();
    encounters_.clear();
    sources_stats_.resize(sources_.size());
    encounters_.resize(sources_.size());
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      sources_stats_[i].client_id = sources_[i].client_id;
      encounters_[i].index = i;
      schedule_encounter(i, rng_.exponential(params_.gap_after_data));
    }
    server_ep_->close();
    server_ep_.reset();
  }
}

void TopPeer::schedule_encounter(std::size_t index, Duration gap) {
  net_.simulation().schedule_in(gap, [this, index] {
    if (!running_) return;
    if (paused_) {
      // Re-check after the plateau; keeps per-source chains alive.
      schedule_encounter(index, params_.pause_min / 2);
      return;
    }
    run_encounter(index);
  });
}

void TopPeer::run_encounter(std::size_t index) {
  const auto target_node = net_.find_by_ip(sources_[index].client_id);
  if (!target_node) {
    schedule_encounter(index, params_.gap_after_timeout);
    return;
  }
  net_.connect(node_, *target_node, [this, index](net::EndpointPtr ep) {
    if (!running_) return;
    if (!ep) {
      schedule_encounter(index, rng_.exponential(params_.gap_after_timeout));
      return;
    }
    Encounter& e = encounters_[index];
    e.endpoint = std::move(ep);
    e.rounds = 0;
    e.received = 0;
    e.expected = 0;
    e.timed_out = false;
    e.endpoint->on_message(
        [this, index](net::Bytes p) { on_message(index, std::move(p)); });
    e.endpoint->on_close([this, index] {
      // Remote dropped us mid-encounter (e.g. honeypot crash): back off and
      // keep this source's chain alive.
      Encounter& enc = encounters_[index];
      if (!enc.endpoint) return;
      net_.simulation().cancel(enc.timeout);
      enc.endpoint.reset();
      if (running_) {
        schedule_encounter(index, rng_.exponential(params_.gap_after_timeout));
      }
    });

    proto::Hello hello;
    hello.user = profile_.user;
    hello.client_id = client_id_;
    hello.port = net_.info(node_).port;
    hello.tags = {proto::Tag::string_tag(proto::kTagName, profile_.client_name),
                  proto::Tag::u32_tag(proto::kTagVersion, profile_.client_version)};
    hello.server_ip = net_.info(server_node_).ip.value();
    e.endpoint->send(proto::encode(proto::AnyMessage{std::move(hello)}));
    ++sources_stats_[index].hellos;
  });
}

void TopPeer::on_message(std::size_t index, net::Bytes packet) {
  Encounter& e = encounters_[index];
  if (!e.endpoint) return;
  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_client, packet, arena_);
  } catch (const DecodeError&) {
    net_.note_malformed(node_);
    finish_encounter(index);
    return;
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::HelloAnswerView>) {
          e.endpoint->send(
              proto::encode(proto::AnyMessage{proto::StartUpload{target_}}));
          ++sources_stats_[index].start_uploads;
        } else if constexpr (std::is_same_v<T, proto::AcceptUpload>) {
          send_round(index);
        } else if constexpr (std::is_same_v<T, proto::SendingPartView>) {
          e.received += m.end - m.begin;
          e.offset += m.end - m.begin;
          if (e.received >= e.expected) {
            net_.simulation().cancel(e.timeout);
            if (e.rounds >= params_.rounds_per_encounter) {
              finish_encounter(index);
            } else {
              send_round(index);
            }
          }
        }
        // ASK-SHARED-FILES is ignored: the crawler shares nothing.
      },
      msg);
}

void TopPeer::send_round(std::size_t index) {
  Encounter& e = encounters_[index];
  ++e.rounds;
  auto rp = crawler_round(target_, e.offset);
  e.expected = 0;
  for (std::size_t i = 0; i < proto::kRequestPartRanges; ++i) {
    e.expected += rp.end[i] - rp.begin[i];
  }
  e.received = 0;
  e.endpoint->send(proto::encode(proto::AnyMessage{rp}));
  ++sources_stats_[index].request_parts;
  e.timeout = net_.simulation().schedule_in(params_.request_timeout, [this, index] {
    Encounter& enc = encounters_[index];
    if (!enc.endpoint) return;
    enc.timed_out = true;
    if (enc.rounds >= params_.rounds_per_encounter) {
      finish_encounter(index);
    } else {
      send_round(index);
    }
  });
}

void TopPeer::finish_encounter(std::size_t index) {
  Encounter& e = encounters_[index];
  net_.simulation().cancel(e.timeout);
  const bool timed_out = e.timed_out;
  if (e.endpoint) {
    e.endpoint->close();
    e.endpoint.reset();
  }
  const Duration mean =
      timed_out ? params_.gap_after_timeout : params_.gap_after_data;
  schedule_encounter(index, rng_.exponential(mean));
}

void TopPeer::toggle_activity() {
  if (!running_) return;
  const Duration span =
      paused_ ? rng_.uniform(params_.pause_min, params_.pause_max)
              : rng_.exponential(params_.active_period_mean);
  net_.simulation().schedule_in(span, [this] {
    paused_ = !paused_;
    toggle_activity();
  });
}

}  // namespace edhp::peer
