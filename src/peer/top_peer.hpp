#pragma once
// The "single most active peer" of Figures 8 and 9: a crawler-like client
// that queries honeypots continuously for the whole measurement.
//
// Observed behaviour in the paper: it sends queries back-to-back, gated
// only by the completion of the previous query (a timeout against
// no-content honeypots, a variable transfer time against random-content
// ones), de-prioritises sources that never deliver, and shows long idle
// plateaus. Each encounter is a fresh connection: HELLO, START-UPLOAD, then
// a fixed number of REQUEST-PART rounds.

#include <vector>

#include "net/network.hpp"
#include "peer/behavior.hpp"
#include "peer/profile.hpp"
#include "proto/messages.hpp"

namespace edhp::peer {

struct TopPeerParams {
  /// REQUEST-PART rounds per encounter.
  std::uint32_t rounds_per_encounter = 2;
  /// Mean gap before re-visiting a source that delivered data.
  Duration gap_after_data = minutes(70);
  /// Mean gap before re-visiting a source that timed out (lower priority).
  Duration gap_after_timeout = minutes(105);
  /// Client timeout per REQUEST-PART.
  Duration request_timeout = 45.0;
  /// Mean length of an active period before an idle plateau.
  Duration active_period_mean = days(4);
  /// Idle plateau length bounds.
  Duration pause_min = hours(10);
  Duration pause_max = hours(40);
};

/// Per-source counters, exported for the Fig 8/9 series.
struct TopPeerSourceStats {
  std::uint32_t client_id = 0;
  std::uint64_t hellos = 0;
  std::uint64_t start_uploads = 0;
  std::uint64_t request_parts = 0;
};

class TopPeer {
 public:
  TopPeer(net::Network& network, net::NodeId server_node, PeerProfile profile,
          FileId target, TopPeerParams params, Rng rng);
  ~TopPeer();

  TopPeer(const TopPeer&) = delete;
  TopPeer& operator=(const TopPeer&) = delete;

  /// Discover providers through the server and start hammering them.
  void start();
  /// Stop after in-flight encounters settle.
  void stop();

  [[nodiscard]] const std::vector<TopPeerSourceStats>& per_source() const noexcept {
    return sources_stats_;
  }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

 private:
  struct Encounter {
    std::size_t index = 0;
    net::EndpointPtr endpoint;
    std::uint32_t rounds = 0;
    std::uint64_t expected = 0;
    std::uint64_t received = 0;
    std::uint64_t offset = 0;
    bool timed_out = false;
    sim::EventHandle timeout{};
  };

  void on_server_message(net::Bytes packet);
  void schedule_encounter(std::size_t index, Duration gap);
  void run_encounter(std::size_t index);
  void on_message(std::size_t index, net::Bytes packet);
  void send_round(std::size_t index);
  void finish_encounter(std::size_t index);
  void toggle_activity();

  net::Network& net_;
  net::NodeId node_;
  net::NodeId server_node_;
  PeerProfile profile_;
  FileId target_;
  TopPeerParams params_;
  Rng rng_;
  /// Scratch for zero-copy decode of the packet currently being handled.
  proto::MessageArena arena_;

  std::uint32_t client_id_ = 0;
  net::EndpointPtr server_ep_;
  std::vector<proto::SourceEntry> sources_;
  std::vector<TopPeerSourceStats> sources_stats_;
  std::vector<Encounter> encounters_;
  bool running_ = false;
  bool paused_ = false;
};

}  // namespace edhp::peer
