#include "peer/profile.hpp"

#include <array>

namespace edhp::peer {
namespace {

struct ClientKind {
  const char* name;
  std::uint32_t version;
  double weight;
};

// Rough 2008 eDonkey client landscape.
constexpr std::array<ClientKind, 6> kClients = {{
    {"eMule 0.49b", 0x31, 0.52},
    {"eMule 0.48a", 0x30, 0.18},
    {"aMule 2.2.2", 0x3C, 0.12},
    {"eMule 0.47c", 0x2F, 0.09},
    {"MLDonkey 2.9", 0x29, 0.06},
    {"Shareaza 2.3", 0x28, 0.03},
}};

}  // namespace

PeerProfile sample_profile(Rng& rng, const BehaviorParams& params,
                           const sim::DiurnalProfile& regions) {
  PeerProfile p;
  p.user = UserId::from_words(rng(), rng());

  std::array<double, kClients.size()> weights{};
  for (std::size_t i = 0; i < kClients.size(); ++i) {
    weights[i] = kClients[i].weight;
  }
  const auto& kind = kClients[rng.weighted(weights)];
  p.client_name = kind.name;
  p.client_version = kind.version;

  p.reachable = rng.chance(params.high_id_fraction);

  std::vector<double> region_weights;
  region_weights.reserve(regions.regions().size());
  for (const auto& r : regions.regions()) {
    region_weights.push_back(r.weight);
  }
  p.tz_offset_hours = regions.regions()[rng.weighted(region_weights)].tz_offset_hours;

  // Bandwidth spread around the ADSL mean; floor keeps transfers finite.
  p.upload_bps = std::max(16.0 * 1024, rng.lognormal(
      std::log(params.upload_bps_mean) - 0.125, 0.5));
  return p;
}

}  // namespace edhp::peer
