#include "peer/downloader.hpp"

#include <algorithm>

#include "proto/filehash.hpp"

namespace edhp::peer {
namespace {

/// Block ranges of one REQUEST-PART round starting at `offset` within the
/// current part.
proto::RequestParts make_round(const FileId& file, std::uint64_t offset) {
  proto::RequestParts rp;
  rp.file = file;
  const std::uint64_t in_part = offset % proto::kPartSize;
  std::uint64_t begin = in_part;
  for (std::size_t i = 0; i < proto::kRequestPartRanges; ++i) {
    const std::uint64_t end = std::min<std::uint64_t>(
        begin + proto::kBlockSize, proto::kPartSize);
    rp.begin[i] = static_cast<std::uint32_t>(begin);
    rp.end[i] = static_cast<std::uint32_t>(end);
    begin = end;
  }
  return rp;
}

}  // namespace

Peer::Peer(const PeerContext& ctx, net::NodeId node, PeerProfile profile,
           FileId target, Rng rng, DoneCallback on_done,
           std::vector<FileId> secondary_targets)
    : ctx_(ctx),
      node_(node),
      profile_(std::move(profile)),
      target_(target),
      secondary_targets_(std::move(secondary_targets)),
      rng_(rng),
      on_done_(std::move(on_done)) {
  const auto& params = *ctx_.params;
  if (!ctx_.home_servers.empty()) {
    const auto pick = ctx_.home_server_weights.size() == ctx_.home_servers.size()
                          ? rng_.weighted(ctx_.home_server_weights)
                          : static_cast<std::size_t>(
                                rng_.below(ctx_.home_servers.size()));
    ctx_.server_node = ctx_.home_servers[pick];
  }
  sessions_left_ = 1 + static_cast<std::uint32_t>(
                           rng_.poisson(std::max(0.0, params.sessions_mean - 1)));
  // Whether this client ever requests upload slots is a per-peer trait:
  // some clients only handshake (source exchange, browsing), which is why
  // the paper sees fewer START-UPLOAD peers than HELLO peers (Figs 5/6).
  uploader_ = rng_.chance(params.start_upload_prob);
  shares_list_ = rng_.chance(params.share_list_prob);
}

Peer::~Peer() {
  if (server_ep_) server_ep_->close();
  for (auto& s : sources_) {
    if (s.endpoint) s.endpoint->close();
    simulation().cancel(s.timeout);
  }
}

sim::Simulation& Peer::simulation() { return ctx_.net->simulation(); }

void Peer::start() { begin_session(); }

void Peer::begin_session() {
  if (finished_) return;
  session_open_ = true;
  ++stats_.sessions;
  if (!sources_selected_) {
    // Some peers learned the sources through peer exchange and never touch
    // the server at all (they are connected elsewhere); they still carry a
    // plausible clientID in their HELLO.
    if (ctx_.source_cache != nullptr && rng_.chance(ctx_.params->pex_prob)) {
      const auto& known = ctx_.source_cache->lookup(target_);
      if (!known.empty()) {
        client_id_ = profile_.reachable
                         ? ctx_.net->info(node_).ip.value()
                         : static_cast<std::uint32_t>(
                               1 + rng_.below(ClientId::kLowIdThreshold - 1));
        via_pex_ = true;
        select_sources(known);
        contact_sources();
        return;
      }
    }
    // First session: resolve providers through the server.
    ctx_.net->connect(node_, ctx_.server_node, [this](net::EndpointPtr ep) {
      if (!ep) {
        ++stats_.connect_failures;
        finish();
        return;
      }
      on_server_connected(std::move(ep));
    });
    return;
  }
  contact_sources();
}

void Peer::on_server_connected(net::EndpointPtr ep) {
  server_ep_ = std::move(ep);
  server_ep_->on_message([this](net::Bytes p) { on_server_message(std::move(p)); });
  server_ep_->on_close([this] { server_ep_.reset(); });

  proto::LoginRequest login;
  login.user = profile_.user;
  login.client_id = 0;
  login.port = ctx_.net->info(node_).port;
  login.tags = {proto::Tag::string_tag(proto::kTagName, profile_.client_name),
                proto::Tag::u32_tag(proto::kTagVersion, profile_.client_version),
                proto::Tag::u32_tag(proto::kTagPort, login.port)};
  server_ep_->send(proto::encode(proto::AnyMessage{std::move(login)}));
}

void Peer::on_server_message(net::Bytes packet) {
  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_server, packet, arena_);
  } catch (const DecodeError&) {
    ctx_.net->note_malformed(node_);
    return;
  }
  if (const auto* id = std::get_if<proto::IdChange>(&msg)) {
    client_id_ = id->client_id;
    server_ep_->send(proto::encode(proto::AnyMessage{proto::GetSources{target_}}));
    return;
  }
  if (const auto* found = std::get_if<proto::FoundSourcesView>(&msg)) {
    if (found->file == target_) {
      const auto sources = arena_.of(found->sources);
      if (ctx_.source_cache != nullptr) {
        // Feed the community cache: this is what later PEX peers consult.
        ctx_.source_cache->offer(target_, sources);
      }
      select_sources(sources);
      // The short-lived server session served its purpose. (Real clients
      // stay connected; only the source query matters to the honeypots.)
      server_ep_->close();
      server_ep_.reset();
      contact_sources();
    }
    return;
  }
}

double Peer::source_weight(std::uint32_t client_id) const {
  if (ctx_.source_weights == nullptr) return 1.0;
  auto it = ctx_.source_weights->find(client_id);
  return it == ctx_.source_weights->end() ? 1.0 : it->second;
}

void Peer::select_sources(std::span<const proto::SourceEntry> found) {
  sources_selected_ = true;
  // Candidates: reachable (HighID) providers.
  std::vector<proto::SourceEntry> candidates;
  candidates.reserve(found.size());
  for (const auto& s : found) {
    if (ClientId(s.client_id).is_low()) continue;
    candidates.push_back(s);
  }
  if (candidates.empty()) return;

  const double extra_mean = rng_.chance(ctx_.params->aggressive_prob)
                                ? ctx_.params->aggressive_extra_mean
                                : ctx_.params->extra_sources_mean;
  const std::size_t k = std::min<std::size_t>(
      candidates.size(), 1 + static_cast<std::size_t>(rng_.poisson(extra_mean)));

  // Weighted sampling without replacement. A provider's effective weight is
  // its visibility times its community reputation: blacklisted providers
  // lose picks to better-reputed ones, which is how the no-content group
  // ends up observing fewer *distinct* peers (Figs 5/6).
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const auto& s : candidates) {
    weights.push_back(source_weight(s.client_id) *
                      ctx_.blacklist->reputation(s.client_id));
  }
  for (std::size_t pick = 0; pick < k; ++pick) {
    const std::size_t i = rng_.weighted(weights);
    Source src;
    src.client_id = candidates[i].client_id;
    src.port = candidates[i].port;
    sources_.push_back(std::move(src));
    weights[i] = 0.0;
    if (std::all_of(weights.begin(), weights.end(),
                    [](double w) { return w <= 0.0; })) {
      break;
    }
  }
}

void Peer::contact_sources() {
  engaged_ = 0;
  for (auto& s : sources_) {
    if (!s.detected && !s.abandoned) {
      s.engaged = true;
      s.uploading = false;
      s.timeouts_this_session = 0;
      s.rounds_this_session = 0;
      ++engaged_;
    }
  }
  if (engaged_ == 0) {
    // Nothing left to try: every source detected (or none selected).
    finish();
    return;
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].engaged) contact(i);
  }
}

void Peer::contact(std::size_t index) {
  Source& src = sources_[index];
  const auto target_node = ctx_.net->find_by_ip(src.client_id);
  if (!target_node) {
    ++stats_.connect_failures;
    conclude(index);
    return;
  }
  ctx_.net->connect(node_, *target_node, [this, index](net::EndpointPtr ep) {
    if (finished_) return;
    Source& s = sources_[index];
    if (!ep) {
      // Provider offline (e.g. crashed honeypot host).
      ++stats_.connect_failures;
      conclude(index);
      return;
    }
    s.endpoint = std::move(ep);
    s.endpoint->on_message(
        [this, index](net::Bytes p) { on_source_message(index, std::move(p)); });
    s.endpoint->on_close([this, index] {
      if (finished_) return;
      Source& closed = sources_[index];
      closed.endpoint.reset();
      if (closed.engaged) conclude(index);
    });

    proto::Hello hello;
    hello.user = profile_.user;
    hello.client_id = client_id_;
    hello.port = ctx_.net->info(node_).port;
    hello.tags = {proto::Tag::string_tag(proto::kTagName, profile_.client_name),
                  proto::Tag::u32_tag(proto::kTagVersion, profile_.client_version)};
    hello.server_ip = ctx_.net->info(ctx_.server_node).ip.value();
    hello.server_port = ctx_.server_port;
    s.endpoint->send(proto::encode(proto::AnyMessage{std::move(hello)}));
    ++stats_.hellos_sent;
  });
}

void Peer::send_shared_list(Source& source) {
  if (!cache_built_) {
    cache_built_ = true;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng_.poisson(ctx_.params->cache_size_mean));
    cache_ = ctx_.catalog->sample_cache(rng_, n);
  }
  proto::AskSharedFilesAnswer answer;
  answer.files.reserve(cache_.size());
  for (const auto& f : cache_) {
    proto::PublishedFile pf;
    pf.file = f.id;
    pf.client_id = client_id_;
    pf.port = ctx_.net->info(node_).port;
    pf.name = f.name;
    pf.size = f.size;
    answer.files.push_back(std::move(pf));
  }
  source.endpoint->send(proto::encode(proto::AnyMessage{std::move(answer)}));
}

void Peer::on_source_message(std::size_t index, net::Bytes packet) {
  Source& src = sources_[index];
  if (!src.endpoint || !src.engaged) return;

  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_client, packet, arena_);
  } catch (const DecodeError&) {
    ctx_.net->note_malformed(node_);
    conclude(index);
    return;
  }

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::HelloAnswerView>) {
          if (uploader_) {
            src.endpoint->send(
                proto::encode(proto::AnyMessage{proto::StartUpload{target_}}));
            ++stats_.start_uploads_sent;
            if (!src.asked_secondary) {
              // Ask this provider about every other file we want (the
              // client checks the source against its full download list);
              // only the primary target is actually transferred.
              src.asked_secondary = true;
              for (const auto& extra : secondary_targets_) {
                src.endpoint->send(proto::encode(
                    proto::AnyMessage{proto::StartUpload{extra}}));
                ++stats_.start_uploads_sent;
              }
            }
            // Safety timeout in case the provider never answers the slot
            // request.
            src.timeout = simulation().schedule_in(
                ctx_.params->request_timeout, [this, index] {
                  if (!finished_ && sources_[index].engaged &&
                      !sources_[index].uploading) {
                    conclude(index);
                  }
                });
          } else {
            // Handshake-only session; linger briefly so the provider's
            // follow-up (e.g. ASK-SHARED-FILES) can still be served.
            src.timeout = simulation().schedule_in(
                10.0, [this, index] {
                  if (!finished_ && sources_[index].engaged &&
                      !sources_[index].uploading) {
                    conclude(index);
                  }
                });
          }
        } else if constexpr (std::is_same_v<T, proto::AskSharedFiles>) {
          if (shares_list_) {
            send_shared_list(src);
          }
        } else if constexpr (std::is_same_v<T, proto::AcceptUpload>) {
          simulation().cancel(src.timeout);
          src.uploading = true;
          src.round_expected = 0;
          send_request_round(index);
        } else if constexpr (std::is_same_v<T, proto::QueueRank>) {
          // Queued: give up this session, retry next time.
          simulation().cancel(src.timeout);
          conclude(index);
        } else if constexpr (std::is_same_v<T, proto::SendingPartView>) {
          if (!src.uploading) return;
          const std::uint64_t got = m.end - m.begin;
          src.round_received += got;
          src.part_bytes += got;
          if (src.part_bytes >= proto::kPartSize) {
            on_part_complete(index);
          } else if (src.round_received >= src.round_expected) {
            simulation().cancel(src.timeout);
            send_request_round(index);
          }
        }
        // HELLO from the provider side or anything else: ignore.
      },
      msg);
}

void Peer::send_request_round(std::size_t index) {
  Source& src = sources_[index];
  if (src.rounds_this_session >= ctx_.params->max_rounds_per_session) {
    conclude(index);
    return;
  }
  ++src.rounds_this_session;
  auto rp = make_round(target_, src.part_bytes);
  src.round_expected = 0;
  for (std::size_t i = 0; i < proto::kRequestPartRanges; ++i) {
    src.round_expected += rp.end[i] - rp.begin[i];
  }
  src.round_received = 0;
  src.endpoint->send(proto::encode(proto::AnyMessage{rp}));
  ++stats_.request_parts_sent;
  src.timeout = simulation().schedule_in(ctx_.params->request_timeout,
                                         [this, index] { on_request_timeout(index); });
}

void Peer::on_request_timeout(std::size_t index) {
  if (finished_) return;
  Source& src = sources_[index];
  if (!src.engaged || !src.uploading) return;
  ++src.timeouts_this_session;
  if (src.timeouts_this_session >= ctx_.params->timeouts_per_session) {
    ++src.timeout_sessions;
    if (src.timeout_sessions >= ctx_.params->detect_after_timeouts) {
      detect(index, ctx_.params->gossip_prob_timeout);
    }
    conclude(index);
    return;
  }
  // Retry the same round.
  if (src.endpoint) {
    auto rp = make_round(target_, src.part_bytes);
    src.round_received = 0;
    src.endpoint->send(proto::encode(proto::AnyMessage{rp}));
    ++stats_.request_parts_sent;
    src.timeout = simulation().schedule_in(
        ctx_.params->request_timeout, [this, index] { on_request_timeout(index); });
  } else {
    conclude(index);
  }
}

void Peer::on_part_complete(std::size_t index) {
  Source& src = sources_[index];
  simulation().cancel(src.timeout);
  ++stats_.parts_completed;
  // Verification: the advertised part hash can never match content invented
  // by a honeypot (random bytes collide with the real MD4 digest with
  // probability 2^-128), so the check fails.
  src.part_bytes = 0;
  ++src.bad_parts;
  if (src.bad_parts >= ctx_.params->detect_after_bad_parts) {
    detect(index, ctx_.params->gossip_prob_bad_part);
    conclude(index);
    return;
  }
  // The client re-queues the part and keeps trying this session.
  send_request_round(index);
}

void Peer::detect(std::size_t index, double gossip_prob) {
  Source& src = sources_[index];
  if (src.detected) return;
  src.detected = true;
  ++stats_.detections;
  if (rng_.chance(gossip_prob)) {
    ctx_.blacklist->report(src.client_id);
  }
}

void Peer::conclude(std::size_t index) {
  Source& src = sources_[index];
  if (!src.engaged) return;
  src.engaged = false;
  src.uploading = false;
  simulation().cancel(src.timeout);
  if (src.endpoint) {
    src.endpoint->close();
    src.endpoint.reset();
  }
  if (engaged_ > 0) {
    --engaged_;
  }
  if (engaged_ == 0 && session_open_) {
    session_done();
  }
}

void Peer::session_done() {
  session_open_ = false;
  if (sessions_left_ > 0) {
    --sessions_left_;
  }
  // Fruitless sessions erode interest in a source: users re-prioritise and
  // clients rotate. Verified progress would prevent this, but a honeypot
  // never delivers any, so every session is a candidate.
  for (auto& s : sources_) {
    if (!s.detected && !s.abandoned &&
        rng_.chance(ctx_.params->abandon_per_session)) {
      s.abandoned = true;
    }
  }
  const bool any_alive =
      std::any_of(sources_.begin(), sources_.end(), [](const Source& s) {
        return !s.detected && !s.abandoned;
      });
  if (sessions_left_ == 0 || !any_alive || sources_.empty()) {
    finish();
    return;
  }
  schedule_next_session();
}

void Peer::schedule_next_session() {
  // Diurnal gating by thinning: draw candidate gaps until one lands in an
  // active period (bounded retries keep worst-case work small).
  Duration gap = rng_.exponential(ctx_.params->session_gap_mean);
  const Time now = simulation().now();
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double activity = ctx_.diurnal->factor(now + gap);
    if (rng_.chance(activity)) break;
    gap += rng_.exponential(ctx_.params->session_gap_mean / 2);
  }
  simulation().schedule_in(gap, [this] {
    if (!finished_) begin_session();
  });
}

void Peer::finish() {
  if (finished_) return;
  finished_ = true;
  if (server_ep_) {
    server_ep_->close();
    server_ep_.reset();
  }
  for (auto& s : sources_) {
    simulation().cancel(s.timeout);
    if (s.endpoint) {
      s.endpoint->close();
      s.endpoint.reset();
    }
  }
  if (on_done_) {
    on_done_();
  }
}

}  // namespace edhp::peer
