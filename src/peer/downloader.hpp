#pragma once
// The simulated downloading peer: an eMule-like client state machine that
// wants one file and interacts with the providers the server returns —
// which, for the advertised fake files, are honeypots.
//
// Lifecycle (all over real wire messages):
//   1. First session: connect + log in to the server, GET-SOURCES for the
//      target file, select a weighted random subset of the returned
//      providers (filtered by the shared blacklist).
//   2. Per session, for every selected source not yet locally detected:
//      HELLO -> (HELLO-ANSWER) -> maybe START-UPLOAD -> (ACCEPT-UPLOAD) ->
//      REQUEST-PART rounds. A no-content honeypot lets requests time out; a
//      random-content honeypot streams blocks until the client completes a
//      part whose hash check fails.
//   3. Detection: enough timed-out sessions (fast — silence is cheap to
//      recognise) or enough corrupt parts (slow — a full 9.28 MB part must
//      be downloaded each time) make the client stop using that provider,
//      and with some probability publish the detection (SharedBlacklist).
//   4. Sessions repeat with diurnal-gated gaps until the peer's patience
//      runs out or every source is detected; then the peer finishes and is
//      reclaimed.
//
// The peer also answers the honeypot's ASK-SHARED-FILES with a sample of
// the catalog (its "cache") unless the feature is disabled for this peer.

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "net/network.hpp"
#include "peer/behavior.hpp"
#include "peer/blacklist.hpp"
#include "peer/catalog.hpp"
#include "peer/profile.hpp"
#include "peer/source_cache.hpp"
#include "proto/messages.hpp"
#include "sim/diurnal.hpp"

namespace edhp::peer {

/// Shared wiring every peer receives (owned by the Population).
struct PeerContext {
  net::Network* net = nullptr;
  net::NodeId server_node = 0;
  std::uint16_t server_port = 4661;
  /// Multi-server networks: when non-empty, each peer picks its home server
  /// from this list (weighted), overriding server_node. A peer only sees
  /// providers indexed at its home server — honeypots spread over servers
  /// therefore observe different subpopulations ("a more global view").
  std::vector<net::NodeId> home_servers;
  std::vector<double> home_server_weights;
  SharedBlacklist* blacklist = nullptr;
  const FileCatalog* catalog = nullptr;
  const BehaviorParams* params = nullptr;
  const sim::DiurnalProfile* diurnal = nullptr;
  /// Optional per-provider attractiveness weights (keyed by clientID);
  /// missing entries default to 1.0.
  const std::unordered_map<std::uint32_t, double>* source_weights = nullptr;
  /// Optional community source cache enabling peer exchange (see
  /// source_cache.hpp); null disables PEX.
  SourceCache* source_cache = nullptr;
};

/// Counters exposed for tests and analysis of the model itself.
struct PeerStats {
  std::uint32_t sessions = 0;
  std::uint32_t hellos_sent = 0;
  std::uint32_t start_uploads_sent = 0;
  std::uint32_t request_parts_sent = 0;
  std::uint32_t parts_completed = 0;
  std::uint32_t detections = 0;
  std::uint32_t connect_failures = 0;
};

class Peer {
 public:
  using DoneCallback = std::function<void()>;

  /// `node` must already be registered with the context's network.
  /// `secondary_targets` are other files this client also wants; it asks
  /// every provider about them (one START-UPLOAD each) but only transfers
  /// the primary target.
  Peer(const PeerContext& ctx, net::NodeId node, PeerProfile profile,
       FileId target, Rng rng, DoneCallback on_done,
       std::vector<FileId> secondary_targets = {});
  ~Peer();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Begin the first session (immediately).
  void start();

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const PeerProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] const PeerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint32_t client_id() const noexcept { return client_id_; }
  /// Whether this peer learned its sources via peer exchange (never logged
  /// in to the server).
  [[nodiscard]] bool via_pex() const noexcept { return via_pex_; }

 private:
  struct Source {
    std::uint32_t client_id = 0;
    std::uint16_t port = 0;
    net::EndpointPtr endpoint;
    bool engaged = false;     ///< has an in-flight exchange this session
    bool uploading = false;   ///< passed START-UPLOAD/ACCEPT this session
    bool detected = false;    ///< locally blacklisted, never contacted again
    bool abandoned = false;   ///< silently dropped (no gossip)
    bool asked_secondary = false;  ///< secondary targets announced once
    std::uint32_t timeout_sessions = 0;
    std::uint32_t timeouts_this_session = 0;
    std::uint32_t rounds_this_session = 0;
    std::uint32_t bad_parts = 0;
    std::uint64_t part_bytes = 0;      ///< progress within the current part
    std::uint64_t round_expected = 0;  ///< bytes requested by the open round
    std::uint64_t round_received = 0;
    sim::EventHandle timeout{};
  };

  void begin_session();
  void on_server_connected(net::EndpointPtr ep);
  void on_server_message(net::Bytes packet);
  void select_sources(std::span<const proto::SourceEntry> found);
  void contact_sources();
  void contact(std::size_t index);
  void on_source_message(std::size_t index, net::Bytes packet);
  void send_request_round(std::size_t index);
  void on_request_timeout(std::size_t index);
  void on_part_complete(std::size_t index);
  void detect(std::size_t index, double gossip_prob);
  void conclude(std::size_t index);
  void session_done();
  void schedule_next_session();
  void finish();

  [[nodiscard]] sim::Simulation& simulation();
  [[nodiscard]] double source_weight(std::uint32_t client_id) const;
  void send_shared_list(Source& source);

  PeerContext ctx_;
  net::NodeId node_;
  PeerProfile profile_;
  FileId target_;
  std::vector<FileId> secondary_targets_;
  Rng rng_;
  DoneCallback on_done_;
  /// Scratch for zero-copy decode of the packet currently being handled.
  proto::MessageArena arena_;

  std::uint32_t client_id_ = 0;
  std::uint32_t sessions_left_ = 0;
  bool via_pex_ = false;  ///< learned sources via peer exchange, not server
  bool uploader_ = true;  ///< false: handshake-only peer (never START-UPLOAD)
  bool shares_list_ = false;
  std::vector<CatalogFile> cache_;  ///< files shared on request (stable)
  bool cache_built_ = false;

  net::EndpointPtr server_ep_;
  std::vector<Source> sources_;
  bool sources_selected_ = false;
  std::size_t engaged_ = 0;
  bool finished_ = false;
  bool session_open_ = false;

  PeerStats stats_;
};

}  // namespace edhp::peer
