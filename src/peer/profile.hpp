#pragma once
// Per-peer static attributes, sampled at arrival time.

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "peer/behavior.hpp"
#include "sim/diurnal.hpp"

namespace edhp::peer {

/// Static identity and capabilities of one simulated peer.
struct PeerProfile {
  UserId user;
  std::string client_name;       ///< e.g. "eMule 0.49b"
  std::uint32_t client_version = 0;
  bool reachable = true;         ///< HighID-capable
  double tz_offset_hours = 0;    ///< region (drives its diurnal activity)
  double upload_bps = 80 * 1024;
};

/// Sample a profile from the 2008 client mix and the region mixture of the
/// given diurnal profile.
[[nodiscard]] PeerProfile sample_profile(Rng& rng, const BehaviorParams& params,
                                         const sim::DiurnalProfile& regions);

}  // namespace edhp::peer
