#pragma once
// Community source knowledge for peer/source exchange.
//
// eDonkey clients exchange provider lists among themselves, so a honeypot
// "may be contacted by peers which are not connected to the server" (paper,
// Section III.B). We model the community side as a per-file cache of
// sources that earlier downloaders learned from FOUND-SOURCES; a fraction
// of newly arriving peers consults the cache instead of the server.

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "proto/messages.hpp"

namespace edhp::peer {

class SourceCache {
 public:
  /// Record sources a peer learned for `file` (deduplicated by clientID).
  void offer(const FileId& file,
             std::initializer_list<proto::SourceEntry> sources) {
    offer(file, std::span<const proto::SourceEntry>(sources.begin(),
                                                    sources.size()));
  }
  void offer(const FileId& file, std::span<const proto::SourceEntry> sources) {
    auto& known = cache_[file];
    for (const auto& s : sources) {
      const bool present =
          std::any_of(known.begin(), known.end(), [&](const proto::SourceEntry& k) {
            return k.client_id == s.client_id;
          });
      if (!present) {
        known.push_back(s);
      }
    }
  }

  /// Sources the community knows for `file` (empty if never looked up).
  [[nodiscard]] const std::vector<proto::SourceEntry>& lookup(
      const FileId& file) const {
    static const std::vector<proto::SourceEntry> kEmpty;
    auto it = cache_.find(file);
    return it == cache_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] std::size_t files_known() const noexcept { return cache_.size(); }

 private:
  std::unordered_map<FileId, std::vector<proto::SourceEntry>> cache_;
};

}  // namespace edhp::peer
