#include "peer/population.hpp"

#include <algorithm>
#include <cmath>

namespace edhp::peer {

Population::Population(PeerContext ctx, Rng rng) : ctx_(ctx), rng_(rng) {
  // Bound of the diurnal factor for thinning, scanned over one week.
  for (double t = 0; t < kWeek; t += kMinute * 10) {
    diurnal_max_ = std::max(diurnal_max_, ctx_.diurnal->factor(t));
  }
}

Population::~Population() = default;

void Population::add_demand(FileDemand demand) {
  demands_.push_back(Demand{demand, ctx_.net->simulation().now(), 0, {}});
  const double prev =
      demand_cumulative_.empty() ? 0.0 : demand_cumulative_.back();
  demand_cumulative_.push_back(prev +
                               std::max(0.0, demand.base_rate_per_day));
  if (running_) {
    schedule_arrival(demands_.size() - 1);
  }
}

std::vector<FileId> Population::sample_secondary(Rng& rng,
                                                 std::size_t primary_index) {
  std::vector<FileId> out;
  const double mean = ctx_.params->secondary_targets_mean;
  if (demands_.size() < 2 || mean <= 0 || demand_cumulative_.back() <= 0) {
    return out;
  }
  const auto want = rng.poisson(mean);
  if (want == 0) return out;
  // Weighted sampling (with replacement + dedup) by demand rate via binary
  // search in the prefix sums; a few collisions are fine — real download
  // lists are weighted the same way popularity is.
  const double total = demand_cumulative_.back();
  for (std::uint64_t attempt = 0; attempt < want * 2 && out.size() < want;
       ++attempt) {
    const double u = rng.uniform() * total;
    const auto it = std::upper_bound(demand_cumulative_.begin(),
                                     demand_cumulative_.end(), u);
    const auto idx = static_cast<std::size_t>(
        std::distance(demand_cumulative_.begin(), it));
    if (idx >= demands_.size() || idx == primary_index) continue;
    const auto& file = demands_[idx].cfg.file;
    if (std::find(out.begin(), out.end(), file) == out.end()) {
      out.push_back(file);
    }
  }
  return out;
}

void Population::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    schedule_arrival(i);
  }
}

void Population::stop() {
  running_ = false;
  // Drop the pending arrival candidates; cancel() is generation-checked, so
  // handles to arrivals that already fired are harmless no-ops.
  for (auto& d : demands_) {
    ctx_.net->simulation().cancel(d.arrival);
    d.arrival = sim::EventHandle{};
  }
}

double Population::rate_at(const Demand& d, Time t) const {
  const double age = t - d.added_at;
  const double ramp =
      d.cfg.ramp_up > 0 ? std::clamp(age / d.cfg.ramp_up, 0.0, 1.0) : 1.0;
  const double decay = std::exp(-d.cfg.decay_per_day * (age / kDay));
  return (d.cfg.base_rate_per_day / kDay) * ramp * decay *
         ctx_.diurnal->factor(t);
}

void Population::schedule_arrival(std::size_t demand_index) {
  Demand& d = demands_[demand_index];
  if (!running_ || d.spawned >= d.cfg.population) return;

  // Thinning: draw candidates at the max rate, accept with the ratio of the
  // true instantaneous rate.
  const double max_rate = (d.cfg.base_rate_per_day / kDay) * diurnal_max_;
  if (max_rate <= 0) return;
  const Duration dt = rng_.exponential(1.0 / max_rate);
  d.arrival = ctx_.net->simulation().schedule_in(dt, [this, demand_index,
                                                      max_rate] {
    Demand& dd = demands_[demand_index];
    if (!running_ || dd.spawned >= dd.cfg.population) return;
    const Time now = ctx_.net->simulation().now();
    if (rng_.chance(rate_at(dd, now) / max_rate)) {
      spawn(demand_index);
    }
    schedule_arrival(demand_index);
  });
}

void Population::spawn(std::size_t demand_index) {
  Demand& d = demands_[demand_index];
  ++d.spawned;
  ++arrivals_;

  Rng peer_rng = rng_.split(arrivals_);
  PeerProfile profile = sample_profile(peer_rng, *ctx_.params, *ctx_.diurnal);
  const auto node = ctx_.net->add_node(profile.reachable, profile.tz_offset_hours,
                                       profile.upload_bps);

  const std::uint64_t id = next_id_++;
  auto secondary = sample_secondary(peer_rng, demand_index);
  auto peer = std::make_unique<Peer>(
      ctx_, node, std::move(profile), d.cfg.file, peer_rng.split(1),
      [this, id] {
        // Reclaim on the next step: the peer may still be on the call stack.
        ctx_.net->simulation().schedule_in(0.0, [this, id] {
          auto it = peers_.find(id);
          if (it == peers_.end()) return;
          const auto& s = it->second->stats();
          finished_totals_.sessions += s.sessions;
          finished_totals_.hellos_sent += s.hellos_sent;
          finished_totals_.start_uploads_sent += s.start_uploads_sent;
          finished_totals_.request_parts_sent += s.request_parts_sent;
          finished_totals_.parts_completed += s.parts_completed;
          finished_totals_.detections += s.detections;
          finished_totals_.connect_failures += s.connect_failures;
          peers_.erase(it);
          ++finished_;
        });
      },
      std::move(secondary));
  Peer& ref = *peer;
  peers_.emplace(id, std::move(peer));
  ref.start();
}

PeerStats Population::totals() const {
  PeerStats out = finished_totals_;
  for (const auto& [id, p] : peers_) {
    const auto& s = p->stats();
    out.sessions += s.sessions;
    out.hellos_sent += s.hellos_sent;
    out.start_uploads_sent += s.start_uploads_sent;
    out.request_parts_sent += s.request_parts_sent;
    out.parts_completed += s.parts_completed;
    out.detections += s.detections;
    out.connect_failures += s.connect_failures;
  }
  return out;
}

}  // namespace edhp::peer
