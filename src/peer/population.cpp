#include "peer/population.hpp"

#include <algorithm>
#include <cmath>

namespace edhp::peer {
namespace {

void fold(PeerStats& into, const PeerStats& s) {
  into.sessions += s.sessions;
  into.hellos_sent += s.hellos_sent;
  into.start_uploads_sent += s.start_uploads_sent;
  into.request_parts_sent += s.request_parts_sent;
  into.parts_completed += s.parts_completed;
  into.detections += s.detections;
  into.connect_failures += s.connect_failures;
}

}  // namespace

Population::Population(PeerContext ctx, Rng rng, PopulationMode mode)
    : ctx_(ctx), rng_(rng), mode_(mode) {
  // Bound of the diurnal factor for thinning, scanned over one week.
  for (double t = 0; t < kWeek; t += kMinute * 10) {
    diurnal_max_ = std::max(diurnal_max_, ctx_.diurnal->factor(t));
  }
}

Population::~Population() = default;

void Population::add_demand(FileDemand demand) {
  demands_.push_back(Demand{demand, ctx_.net->simulation().now(), 0, {}});
  demand_finished_.emplace_back();
  const double prev =
      demand_cumulative_.empty() ? 0.0 : demand_cumulative_.back();
  demand_cumulative_.push_back(prev +
                               std::max(0.0, demand.base_rate_per_day));
  if (running_) {
    schedule_arrival(demands_.size() - 1);
  }
}

std::vector<FileId> Population::sample_secondary(Rng& rng,
                                                 std::size_t primary_index) {
  std::vector<FileId> out;
  const double mean = ctx_.params->secondary_targets_mean;
  if (demands_.size() < 2 || mean <= 0 || demand_cumulative_.back() <= 0) {
    return out;
  }
  const auto want = rng.poisson(mean);
  if (want == 0) return out;
  // Weighted sampling (with replacement + dedup) by demand rate via binary
  // search in the prefix sums; a few collisions are fine — real download
  // lists are weighted the same way popularity is.
  const double total = demand_cumulative_.back();
  for (std::uint64_t attempt = 0; attempt < want * 2 && out.size() < want;
       ++attempt) {
    const double u = rng.uniform() * total;
    const auto it = std::upper_bound(demand_cumulative_.begin(),
                                     demand_cumulative_.end(), u);
    const auto idx = static_cast<std::size_t>(
        std::distance(demand_cumulative_.begin(), it));
    if (idx >= demands_.size() || idx == primary_index) continue;
    const auto& file = demands_[idx].cfg.file;
    if (std::find(out.begin(), out.end(), file) == out.end()) {
      out.push_back(file);
    }
  }
  return out;
}

void Population::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    schedule_arrival(i);
  }
}

void Population::stop() {
  running_ = false;
  // Drop the pending arrival candidates; cancel() is generation-checked, so
  // handles to arrivals that already fired are harmless no-ops.
  for (auto& d : demands_) {
    ctx_.net->simulation().cancel(d.arrival);
    d.arrival = sim::EventHandle{};
  }
}

double Population::rate_at(const Demand& d, Time t) const {
  const double age = t - d.added_at;
  const double ramp =
      d.cfg.ramp_up > 0 ? std::clamp(age / d.cfg.ramp_up, 0.0, 1.0) : 1.0;
  const double decay = std::exp(-d.cfg.decay_per_day * (age / kDay));
  return (d.cfg.base_rate_per_day / kDay) * ramp * decay *
         ctx_.diurnal->factor(t);
}

void Population::schedule_arrival(std::size_t demand_index) {
  Demand& d = demands_[demand_index];
  if (!running_ || d.spawned >= d.cfg.population) return;

  // Thinning: draw candidates at the max rate, accept with the ratio of the
  // true instantaneous rate.
  const double max_rate = (d.cfg.base_rate_per_day / kDay) * diurnal_max_;
  if (max_rate <= 0) return;
  const Duration dt = rng_.exponential(1.0 / max_rate);
  d.arrival = ctx_.net->simulation().schedule_in(dt, [this, demand_index,
                                                      max_rate] {
    Demand& dd = demands_[demand_index];
    if (!running_ || dd.spawned >= dd.cfg.population) return;
    const Time now = ctx_.net->simulation().now();
    if (rng_.chance(rate_at(dd, now) / max_rate)) {
      spawn(demand_index);
    }
    schedule_arrival(demand_index);
  });
}

std::uint32_t Population::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slot_next_free_[slot];
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slot_peer_.size());
  slot_peer_.emplace_back();
  slot_gen_.push_back(0);
  slot_next_free_.push_back(kNoSlot);
  slot_demand_.push_back(0);
  slot_spawn_time_.push_back(0.0);
  slot_arrival_.push_back(0);
  return slot;
}

void Population::spawn(std::size_t demand_index) {
  Demand& d = demands_[demand_index];
  ++d.spawned;
  ++arrivals_;

  // The RNG draw order below (profile, then node, then id, then secondary
  // targets, then the peer's own stream) is identical in both modes; so is
  // the single reclaim event each finished peer schedules. Mode selection
  // therefore cannot shift a single draw or event of a campaign.
  Rng peer_rng = rng_.split(arrivals_);
  PeerProfile profile = sample_profile(peer_rng, *ctx_.params, *ctx_.diurnal);
  const auto node = ctx_.net->add_node(profile.reachable, profile.tz_offset_hours,
                                       profile.upload_bps);

  const std::uint64_t id = next_id_++;
  auto secondary = sample_secondary(peer_rng, demand_index);

  if (mode_ == PopulationMode::legacy_eager) {
    auto peer = std::make_unique<Peer>(
        ctx_, node, std::move(profile), d.cfg.file, peer_rng.split(1),
        [this, id] {
          // Reclaim on the next step: the peer may still be on the call stack.
          ctx_.net->simulation().schedule_in(0.0,
                                             [this, id] { reclaim_legacy(id); });
        },
        std::move(secondary));
    Peer& ref = *peer;
    peers_.emplace(id, std::move(peer));
    ++live_;
    peak_live_ = std::max(peak_live_, live_);
    ref.start();
    return;
  }

  const std::uint32_t slot = acquire_slot();
  const std::uint32_t generation = slot_gen_[slot];
  slot_demand_[slot] = static_cast<std::uint32_t>(demand_index);
  slot_spawn_time_[slot] = ctx_.net->simulation().now();
  slot_arrival_[slot] = arrivals_;
  auto peer = std::make_unique<Peer>(
      ctx_, node, std::move(profile), d.cfg.file, peer_rng.split(1),
      [this, slot, generation] {
        // Reclaim on the next step: the peer may still be on the call stack.
        ctx_.net->simulation().schedule_in(
            0.0, [this, slot, generation] { reclaim(slot, generation); });
      },
      std::move(secondary));
  Peer& ref = *peer;
  slot_peer_[slot] = std::move(peer);
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  ref.start();
}

void Population::reclaim(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slot_gen_.size() || slot_gen_[slot] != generation ||
      slot_peer_[slot] == nullptr) {
    return;
  }
  const Peer& peer = *slot_peer_[slot];
  const PeerStats& s = peer.stats();
  fold(demand_finished_[slot_demand_[slot]], s);
  fold(finished_totals_, s);
  const auto node = peer.node();
  // ~Peer closes every endpoint, nothing ever connects TO a peer node, and
  // peer IPs appear in no provider list — so the node's network state can
  // be released the moment the object goes.
  slot_peer_[slot].reset();
  ctx_.net->retire_node(node);
  ++slot_gen_[slot];  // outstanding reclaim handles to this slot go stale
  slot_next_free_[slot] = free_head_;
  free_head_ = slot;
  --live_;
  ++finished_;
}

void Population::reclaim_legacy(std::uint64_t id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  fold(finished_totals_, it->second->stats());
  peers_.erase(it);
  --live_;
  ++finished_;
}

PeerStats Population::totals() const {
  PeerStats out = finished_totals_;
  for (const auto& p : slot_peer_) {
    if (p) fold(out, p->stats());
  }
  for (const auto& [id, p] : peers_) {
    fold(out, p->stats());
  }
  return out;
}

}  // namespace edhp::peer
