#pragma once
// Synthetic catalog of the files circulating in the simulated eDonkey
// network.
//
// Files have Zipf-distributed popularity and realistic names and sizes
// drawn from a category mixture (video / audio / archive / document), so
// that shared-file lists harvested by honeypots reproduce the magnitudes of
// Table I (hundreds of thousands of distinct files, tens of terabytes) and
// give the name anonymiser realistic material.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace edhp::peer {

/// One catalog entry.
struct CatalogFile {
  FileId id;
  std::string name;
  std::uint32_t size = 0;       ///< bytes
  double popularity = 0;        ///< Zipf pmf of its rank
};

struct CatalogParams {
  std::size_t num_files = 100'000;
  double zipf_alpha = 0.9;  ///< popularity skew across files
  /// Probability a cache entry is a file essentially unique to its owner
  /// (personal rips, renamed archives, partial files). This tail is what
  /// makes the distinct-file counts of Table I grow linearly with the
  /// number of observed peers instead of saturating on a shared catalog.
  double unique_tail_prob = 0.05;
};

/// Immutable after construction; shared by all peers of a scenario.
class FileCatalog {
 public:
  FileCatalog(const CatalogParams& params, Rng rng);

  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }
  [[nodiscard]] const CatalogFile& at(std::size_t rank) const {
    return files_.at(rank);
  }

  /// Sample one file rank by popularity.
  [[nodiscard]] std::size_t sample(Rng& rng) const { return zipf_.sample(rng); }

  /// Sample a peer's cache: `count` entries mixing popularity-weighted
  /// distinct catalog files with owner-unique private files.
  [[nodiscard]] std::vector<CatalogFile> sample_cache(Rng& rng,
                                                      std::size_t count) const;

  /// A file effectively unique to one peer (fresh id, realistic name/size).
  [[nodiscard]] CatalogFile make_private_file(Rng& rng) const;

 private:
  CatalogParams params_;
  std::vector<CatalogFile> files_;
  ZipfSampler zipf_;
};

/// A synthetic but realistic file name for the given rank and category die.
[[nodiscard]] std::string synth_file_name(std::size_t rank, Rng& rng);

}  // namespace edhp::peer
