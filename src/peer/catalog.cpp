#include "peer/catalog.hpp"

#include <array>
#include <unordered_set>

namespace edhp::peer {
namespace {

// Word pools for synthetic names. Frequent structural words ("dvdrip",
// "2008", codecs) appear across many names; title words are rarer — the
// distribution the filename anonymiser is designed for.
constexpr std::array kTitleWords = {
    "shadow", "river",  "empire", "night",  "garden", "stone",   "echo",
    "winter", "crimson", "hidden", "voyage", "signal", "harbor",  "machine",
    "island", "mirror", "thunder", "silent", "golden", "forgotten"};
constexpr std::array kStructureWords = {"dvdrip", "xvid", "ac3", "vostfr",
                                        "limited", "proper", "retail"};
constexpr std::array kYears = {"2005", "2006", "2007", "2008"};

struct Category {
  const char* extension;
  double weight;
  double size_mu;     // lognormal mu of size in bytes
  double size_sigma;
};

// 2008-era catalog mixture; means chosen so the catalog-wide average file
// size is ~330 MB, matching Table I's space-per-file in both measurements.
constexpr std::array<Category, 4> kCategories = {{
    {".avi", 0.45, 20.3, 0.45},  // video, ~700 MB median
    {".mp3", 0.35, 15.5, 0.55},  // audio, ~5.4 MB median
    {".iso", 0.10, 19.6, 0.60},  // images/archives, ~330 MB median
    {".pdf", 0.10, 14.0, 0.80},  // documents, ~1.2 MB median
}};

}  // namespace

std::string synth_file_name(std::size_t rank, Rng& rng) {
  std::string name;
  const std::size_t words = 2 + rng.below(3);
  for (std::size_t w = 0; w < words; ++w) {
    if (!name.empty()) name.push_back('.');
    name += kTitleWords[rng.below(kTitleWords.size())];
  }
  name.push_back('.');
  name += kYears[rng.below(kYears.size())];
  if (rng.chance(0.7)) {
    name.push_back('.');
    name += kStructureWords[rng.below(kStructureWords.size())];
  }
  // A rank marker keeps names unique without changing their word structure.
  name += ".r" + std::to_string(rank);
  return name;
}

namespace {

/// Size sampler shared by catalog construction and private files.
std::uint32_t sample_size(Rng& rng, const Category& cat) {
  const double size = rng.lognormal(cat.size_mu, cat.size_sigma);
  return static_cast<std::uint32_t>(std::min(size, 4.0e9));
}

const Category& sample_category(Rng& rng) {
  std::array<double, kCategories.size()> weights{};
  for (std::size_t i = 0; i < kCategories.size(); ++i) {
    weights[i] = kCategories[i].weight;
  }
  return kCategories[rng.weighted(weights)];
}

}  // namespace

FileCatalog::FileCatalog(const CatalogParams& params, Rng rng)
    : params_(params), zipf_(params.num_files, params.zipf_alpha) {
  files_.reserve(params.num_files);
  for (std::size_t rank = 0; rank < params.num_files; ++rank) {
    CatalogFile f;
    f.id = FileId::from_words(rng(), rng());
    const auto& cat = sample_category(rng);
    f.name = synth_file_name(rank, rng) + cat.extension;
    f.size = sample_size(rng, cat);  // 2008 wire format caps at 4 GB
    f.popularity = zipf_.pmf(rank);
    files_.push_back(std::move(f));
  }
}

CatalogFile FileCatalog::make_private_file(Rng& rng) const {
  CatalogFile f;
  f.id = FileId::from_words(rng(), rng());
  const auto& cat = sample_category(rng);
  // Private files reuse realistic word structure; the "p" marker keeps the
  // synthetic name unique without inventing new vocabulary.
  f.name = synth_file_name(900'000 + rng.below(1'000'000), rng) + cat.extension;
  f.size = sample_size(rng, cat);
  f.popularity = 0.0;
  return f;
}

std::vector<CatalogFile> FileCatalog::sample_cache(Rng& rng,
                                                   std::size_t count) const {
  std::unordered_set<std::size_t> seen;
  std::vector<CatalogFile> out;
  out.reserve(count);
  // Popularity-weighted distinct sampling with a bounded number of retries
  // (caches are tiny relative to the catalog so collisions are rare), mixed
  // with owner-unique private files.
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 8 + 16;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    if (rng.chance(params_.unique_tail_prob)) {
      out.push_back(make_private_file(rng));
      continue;
    }
    const std::size_t rank = zipf_.sample(rng);
    if (seen.insert(rank).second) {
      out.push_back(files_[rank]);
    }
  }
  return out;
}

}  // namespace edhp::peer
