#pragma once
// Network-level honeypot blacklisting dynamics.
//
// The paper observes that fewer *distinct* peers contact no-content
// honeypots than random-content ones and attributes it to "some kind of
// blacklisting". We model the community side of that: when a client detects
// a bogus provider it may publish the fact (forums, shared ipfilter lists);
// each published detection shaves the provider's reputation, and newly
// arriving peers skip a source with probability (1 - reputation). Because
// silence is detected faster than corrupt content, no-content honeypots
// lose reputation earlier, producing the Fig 5/6 gap.

#include <cstdint>
#include <unordered_map>

namespace edhp::peer {

/// Shared, per-measurement reputation table keyed by provider clientID.
class SharedBlacklist {
 public:
  explicit SharedBlacklist(double penalty) : penalty_(penalty) {}

  /// A published detection against `client_id`.
  void report(std::uint32_t client_id) {
    auto [it, inserted] = reputation_.try_emplace(client_id, 1.0);
    it->second *= (1.0 - penalty_);
    ++reports_;
  }

  /// Probability a new peer still includes this source in its selection.
  [[nodiscard]] double reputation(std::uint32_t client_id) const {
    auto it = reputation_.find(client_id);
    return it == reputation_.end() ? 1.0 : it->second;
  }

  [[nodiscard]] std::uint64_t reports() const noexcept { return reports_; }

 private:
  double penalty_;
  std::unordered_map<std::uint32_t, double> reputation_;
  std::uint64_t reports_ = 0;
};

}  // namespace edhp::peer
