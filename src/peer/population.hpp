#pragma once
// The peer population: non-homogeneous Poisson arrival of interested peers
// per advertised file, with finite pools and popularity decay.
//
// Each advertised file has a demand: a base arrival rate of newly
// interested peers, an exponential popularity decay (new releases cool
// down, producing Fig 2's declining new-peers-per-day), and a finite
// population of potentially interested peers (long measurements eventually
// saturate). Arrival intensity is modulated by the diurnal profile, giving
// Fig 4's day-night oscillation.
//
// The Population owns the live Peer objects; a finished peer is reclaimed
// on the next simulation step, and its counters are folded into aggregate
// statistics.

#include <memory>
#include <unordered_map>

#include "peer/downloader.hpp"

namespace edhp::peer {

/// Demand for one file.
struct FileDemand {
  FileId file;
  double base_rate_per_day = 0;  ///< new interested peers per day at t=0
  double decay_per_day = 0;      ///< exponential decay rate of the rate
  std::uint64_t population = 0;  ///< finite pool of interested peers
  /// Discovery ramp: interested peers only notice a fresh advertisement as
  /// their periodic source queries come around, so the arrival rate climbs
  /// linearly from 0 to full over this span (0 = instantaneous).
  Duration ramp_up = 0;
};

class Population {
 public:
  /// `ctx` holds non-owning pointers that must outlive the Population.
  Population(PeerContext ctx, Rng rng);
  ~Population();

  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  void add_demand(FileDemand demand);

  /// Begin arrival processes (call after honeypots advertise, so that
  /// GET-SOURCES finds providers).
  void start();
  /// Stop new arrivals (running peers finish naturally). Pending arrival
  /// events are cancelled in O(1), so a stopped Population leaves nothing
  /// in the event queue.
  void stop();

  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t active() const noexcept { return peers_.size(); }
  [[nodiscard]] std::uint64_t finished() const noexcept { return finished_; }

  /// Aggregate behaviour counters (finished peers plus live ones).
  [[nodiscard]] PeerStats totals() const;

 private:
  struct Demand {
    FileDemand cfg;
    Time added_at = 0;  ///< when the demand was registered (ramp anchor)
    std::uint64_t spawned = 0;
    sim::EventHandle arrival{};  ///< next pending arrival candidate
  };

  void schedule_arrival(std::size_t demand_index);
  void spawn(std::size_t demand_index);
  [[nodiscard]] double rate_at(const Demand& d, Time t) const;
  [[nodiscard]] std::vector<FileId> sample_secondary(Rng& rng,
                                                     std::size_t primary_index);

  PeerContext ctx_;
  Rng rng_;
  std::vector<Demand> demands_;
  std::vector<double> demand_cumulative_;  ///< prefix sums of demand rates
  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;
  std::uint64_t next_id_ = 1;
  std::uint64_t arrivals_ = 0;
  std::uint64_t finished_ = 0;
  PeerStats finished_totals_;
  double diurnal_max_ = 1.0;
  bool running_ = false;
};

}  // namespace edhp::peer
