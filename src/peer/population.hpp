#pragma once
// The peer population: non-homogeneous Poisson arrival of interested peers
// per advertised file, with finite pools and popularity decay.
//
// Each advertised file has a demand: a base arrival rate of newly
// interested peers, an exponential popularity decay (new releases cool
// down, producing Fig 2's declining new-peers-per-day), and a finite
// population of potentially interested peers (long measurements eventually
// saturate). Arrival intensity is modulated by the diurnal profile, giving
// Fig 4's day-night oscillation.
//
// The population is a statistical process, not a roster: a peer exists only
// as aggregate per-demand state (arrival counters, folded PeerStats) until
// its arrival fires, at which point it materializes into a recycling slab
// slot for the duration of its interaction. On completion its counters fold
// back into the per-demand aggregates, its slot is recycled, and its
// network node is retired — so memory tracks the peak SIMULTANEOUS
// population, not the total number of peers a campaign ever spawns.
// Million-arrival campaigns therefore run at the footprint of their ~tens
// of thousands of concurrently active peers.
//
// The slab keeps the owning Peer pointers (cold) apart from the per-slot
// scalars the reclaim/accounting paths touch (generation, demand index,
// spawn time, arrival index — hot, struct-of-arrays), so bookkeeping scans
// never pull whole Peer objects through the cache.

#include <memory>
#include <unordered_map>
#include <vector>

#include "peer/downloader.hpp"

namespace edhp::peer {

/// Demand for one file.
struct FileDemand {
  FileId file;
  double base_rate_per_day = 0;  ///< new interested peers per day at t=0
  double decay_per_day = 0;      ///< exponential decay rate of the rate
  std::uint64_t population = 0;  ///< finite pool of interested peers
  /// Discovery ramp: interested peers only notice a fresh advertisement as
  /// their periodic source queries come around, so the arrival rate climbs
  /// linearly from 0 to full over this span (0 = instantaneous).
  Duration ramp_up = 0;
};

/// Storage strategy for live peers. Both modes consume the RNG stream in
/// exactly the same order and schedule identical events, so a campaign's
/// dataset is bit-for-bit independent of the mode (tested on the golden
/// fingerprints); they differ only in memory behaviour.
enum class PopulationMode : std::uint8_t {
  /// Recycling slab + SoA bookkeeping; finished peers retire their network
  /// node. Constant memory in total arrivals. The default.
  lazy,
  /// The historical path: an id-keyed map of live peers, nodes never
  /// retired. Memory grows with total arrivals; kept as the determinism
  /// baseline the lazy path is tested against.
  legacy_eager,
};

class Population {
 public:
  /// `ctx` holds non-owning pointers that must outlive the Population.
  Population(PeerContext ctx, Rng rng,
             PopulationMode mode = PopulationMode::lazy);
  ~Population();

  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  void add_demand(FileDemand demand);

  /// Begin arrival processes (call after honeypots advertise, so that
  /// GET-SOURCES finds providers).
  void start();
  /// Stop new arrivals (running peers finish naturally). Pending arrival
  /// events are cancelled in O(1), so a stopped Population leaves nothing
  /// in the event queue.
  void stop();

  [[nodiscard]] PopulationMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t active() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t finished() const noexcept { return finished_; }
  /// High-water mark of simultaneously live peers.
  [[nodiscard]] std::uint64_t peak_active() const noexcept {
    return peak_live_;
  }
  /// Slots ever allocated by the lazy slab (its structural memory bound);
  /// 0 in legacy_eager mode.
  [[nodiscard]] std::size_t slab_capacity() const noexcept {
    return slot_peer_.size();
  }

  /// Aggregate behaviour counters (finished peers plus live ones).
  [[nodiscard]] PeerStats totals() const;
  /// Counters folded from FINISHED peers of one demand (lazy mode; in
  /// legacy_eager mode finished stats are only tracked population-wide and
  /// every per-demand entry stays zero).
  [[nodiscard]] const PeerStats& finished_stats(std::size_t demand_index) const {
    return demand_finished_.at(demand_index);
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Demand {
    FileDemand cfg;
    Time added_at = 0;  ///< when the demand was registered (ramp anchor)
    std::uint64_t spawned = 0;
    sim::EventHandle arrival{};  ///< next pending arrival candidate
  };

  void schedule_arrival(std::size_t demand_index);
  void spawn(std::size_t demand_index);
  /// Fold a finished slab peer back into the aggregates and release its
  /// slot + network node. Generation-checked: stale events are no-ops.
  void reclaim(std::uint32_t slot, std::uint32_t generation);
  void reclaim_legacy(std::uint64_t id);
  [[nodiscard]] std::uint32_t acquire_slot();
  [[nodiscard]] double rate_at(const Demand& d, Time t) const;
  [[nodiscard]] std::vector<FileId> sample_secondary(Rng& rng,
                                                     std::size_t primary_index);

  PeerContext ctx_;
  Rng rng_;
  PopulationMode mode_;
  std::vector<Demand> demands_;
  std::vector<double> demand_cumulative_;  ///< prefix sums of demand rates
  std::vector<PeerStats> demand_finished_;  ///< aligned with demands_

  // Lazy slab. slot_peer_ owns the materialized peers (cold); the parallel
  // vectors are the hot per-slot scalars (SoA). Freed slots chain through
  // slot_next_free_.
  std::vector<std::unique_ptr<Peer>> slot_peer_;
  std::vector<std::uint32_t> slot_gen_;
  std::vector<std::uint32_t> slot_next_free_;
  std::vector<std::uint32_t> slot_demand_;
  std::vector<double> slot_spawn_time_;
  std::vector<std::uint64_t> slot_arrival_;
  std::uint32_t free_head_ = kNoSlot;

  // legacy_eager storage.
  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;

  std::uint64_t next_id_ = 1;
  std::uint64_t arrivals_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t peak_live_ = 0;
  std::uint64_t finished_ = 0;
  PeerStats finished_totals_;
  double diurnal_max_ = 1.0;
  bool running_ = false;
};

}  // namespace edhp::peer
