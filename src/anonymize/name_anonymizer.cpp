#include "anonymize/name_anonymizer.hpp"

#include <unordered_set>

#include "common/text.hpp"

namespace edhp::anonymize {

NameAnonymizer::NameAnonymizer(std::span<const std::string> corpus,
                               std::uint64_t threshold)
    : threshold_(threshold) {
  // A word's frequency is the number of *names* it appears in, so repeating
  // a word inside one title does not make it "frequent".
  for (const auto& name : corpus) {
    std::unordered_set<std::string> seen;
    for (auto& w : tokenize(name)) {
      if (seen.insert(w).second) {
        ++frequency_[w];
      }
    }
  }
  stats_.distinct_words = frequency_.size();
  for (const auto& [word, count] : frequency_) {
    if (count >= threshold_) {
      ++stats_.kept_words;
    } else {
      ++stats_.replaced_words;
    }
  }
}

std::string NameAnonymizer::anonymize(const std::string& name) {
  std::string out;
  for (auto& w : tokenize(name)) {
    if (!out.empty()) out.push_back(' ');
    auto it = frequency_.find(w);
    if (it != frequency_.end() && it->second >= threshold_) {
      out += w;
      continue;
    }
    auto [rit, inserted] = replacement_.try_emplace(w, next_token_);
    if (inserted) ++next_token_;
    out += std::to_string(rit->second);
  }
  return out;
}

}  // namespace edhp::anonymize
