#pragma once
// Filename anonymisation: file names may embed personal information, so the
// paper replaces every word that appears less often than a threshold by an
// integer token. Frequent words (codec names, "dvdrip", years, ...) carry
// no personal information and are kept; rare words are what identifies
// content or people.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace edhp::anonymize {

struct NameAnonymizerStats {
  std::uint64_t distinct_words = 0;
  std::uint64_t kept_words = 0;      ///< distinct words at/above threshold
  std::uint64_t replaced_words = 0;  ///< distinct words below threshold
};

/// Anonymises a corpus of file names with a shared, coherent word mapping.
class NameAnonymizer {
 public:
  /// Build the word-frequency table from `corpus`; words occurring in fewer
  /// than `threshold` names are replaced by integers.
  NameAnonymizer(std::span<const std::string> corpus, std::uint64_t threshold);

  /// Anonymised form of a name: frequent words kept, rare words replaced by
  /// their integer token, joined by spaces. Words never seen in the corpus
  /// are treated as rare.
  [[nodiscard]] std::string anonymize(const std::string& name);

  [[nodiscard]] NameAnonymizerStats stats() const noexcept { return stats_; }

 private:
  std::uint64_t threshold_;
  std::unordered_map<std::string, std::uint64_t> frequency_;
  std::unordered_map<std::string, std::uint64_t> replacement_;
  std::uint64_t next_token_ = 0;
  NameAnonymizerStats stats_;
};

}  // namespace edhp::anonymize
