#pragma once
// Stage-1 anonymisation: a keyed one-way hash applied to peer IP addresses
// inside each honeypot, before anything is written to disk or sent to the
// manager.
//
// A plain hash of an IPv4 address would be reversible by brute force (2^32
// candidates), which is why the paper uses a second stage; the salt makes
// the honeypot-side hash non-invertible for anyone who does not hold it.
// The manager distributes one salt per measurement so that all honeypots
// hash coherently (the same peer gets the same value everywhere), and
// discards the salt when the measurement ends — after which even the
// operators cannot recover addresses. Stage 2 (renumber.hpp) then replaces
// hashes by dense integers so published data is secure even if the salt
// ever leaked.

#include <cstdint>
#include <string>

#include "common/ids.hpp"

namespace edhp::anonymize {

/// Salted one-way IP hasher (SHA-1, truncated to 64 bits).
class IpAnonymizer {
 public:
  explicit IpAnonymizer(std::string salt);

  /// Stable anonymous identifier for an address under this salt.
  [[nodiscard]] std::uint64_t anonymize(IpAddr ip) const;

 private:
  std::string salt_;
};

}  // namespace edhp::anonymize
