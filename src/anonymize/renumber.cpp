#include "anonymize/renumber.hpp"

#include <stdexcept>

namespace edhp::anonymize {

std::uint64_t renumber_peers(std::span<logbook::LogFile> logs,
                             PeerMapping* mapping_out) {
  for (const auto& log : logs) {
    if (log.header.peer_kind != logbook::PeerIdKind::stage1_hash) {
      throw std::invalid_argument("renumber_peers: log is already stage-2");
    }
  }

  PeerMapping mapping;
  std::uint64_t next = 0;
  for (auto& log : logs) {
    for (auto& r : log.records) {
      auto [it, inserted] = mapping.try_emplace(r.peer, next);
      if (inserted) ++next;
      r.peer = it->second;
    }
    log.header.peer_kind = logbook::PeerIdKind::stage2_index;
  }
  if (mapping_out != nullptr) {
    *mapping_out = std::move(mapping);
  }
  return next;
}

std::uint64_t renumber_peers(logbook::LogFile& log, PeerMapping* mapping_out) {
  return renumber_peers(std::span<logbook::LogFile>(&log, 1), mapping_out);
}

}  // namespace edhp::anonymize
