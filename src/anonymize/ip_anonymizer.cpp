#include "anonymize/ip_anonymizer.hpp"

#include "common/sha1.hpp"

namespace edhp::anonymize {

IpAnonymizer::IpAnonymizer(std::string salt) : salt_(std::move(salt)) {}

std::uint64_t IpAnonymizer::anonymize(IpAddr ip) const {
  Sha1 h;
  h.update(salt_);
  const std::uint32_t v = ip.value();
  const std::uint8_t be[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  h.update(std::span<const std::uint8_t>(be, 4));
  const auto digest = h.finish();
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | digest[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace edhp::anonymize
