#pragma once
// Stage-2 anonymisation: replace stage-1 peer hashes by dense integers, in
// first-appearance order, coherently across all logs of a measurement. The
// result contains no value derived from an IP address at all, so it cannot
// be attacked with a reverse dictionary.

#include <cstdint>
#include <span>
#include <unordered_map>

#include "logbook/record.hpp"

namespace edhp::anonymize {

/// The hash -> integer mapping built during renumbering; exposed so callers
/// can verify coherence properties in tests (it is discarded in production).
using PeerMapping = std::unordered_map<std::uint64_t, std::uint64_t>;

/// Renumber peers coherently across `logs` (the same stage-1 hash becomes
/// the same integer in every log). Logs must be stage-1; their peer_kind is
/// updated. Returns the number of distinct peers.
std::uint64_t renumber_peers(std::span<logbook::LogFile> logs,
                             PeerMapping* mapping_out = nullptr);

/// Convenience overload for a single (typically merged) log.
std::uint64_t renumber_peers(logbook::LogFile& log,
                             PeerMapping* mapping_out = nullptr);

}  // namespace edhp::anonymize
