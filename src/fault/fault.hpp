#pragma once
// Fault-injection subsystem.
//
// The paper's measurement platform survives PlanetLab churn: hosts die and
// reboot, uplinks flap, directory servers restart, and the manager
// "regularly checks the status of each honeypot" to "re-launch dead
// honeypots or redirect them toward other servers" (Section III.A). This
// module gives the reproduction a real fault model:
//
//   ChaosConfig  — knobs (MTBFs and outage durations per fault class);
//   FaultPlan    — a pre-generated, seed-deterministic schedule of events
//                  (pure data: the same config + rng always yields the same
//                  plan, so chaos campaigns are reproducible bit-for-bit);
//   Injector     — binds a plan to a live world: schedules every event on
//                  the simulation engine and drives net::Network primitives
//                  plus app-level hooks (honeypot crash, server restart).
//
// Fault classes and their observable semantics:
//   host crash / reboot   node down + RST of every connection + the honeypot
//                         process dies (unspooled log tail at risk);
//   uplink outage         node down + RSTs, but the process survives and
//                         retries with backoff once the link returns;
//   server restart        the directory server drops all sessions, then
//                         accepts logins again (honeypots must re-login and
//                         re-advertise);
//   latency spike         per-host latency multiplier for an episode;
//   partition             a subset of hosts is split from the rest (connect
//                         refusal both ways + RST of cross-group traffic);
//   manager crash         the control plane dies (fleet table, watchdog and
//                         ack state lost); honeypots keep running and keep
//                         spooling locally until a recovery re-adopts them;
//   disk full             a host's spool quota collapses to a fraction of
//                         its budget for an episode (the honeypot degrades:
//                         compaction + priority shedding, never silent loss);
//   disk slow             periodic spool cuts are throttled for an episode
//                         (the unspooled tail grows; backpressure covers it);
//   memory pressure       a host's record buffer shrinks and an fd-style
//                         session ceiling engages for an episode.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/budget.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "fault/byzantine.hpp"
#include "fault/rng_splits.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace edhp::fault {

enum class FaultKind : std::uint8_t {
  host_crash,           ///< host + honeypot process die (subject = host)
  host_reboot,          ///< host back up; manager relaunch can reach it
  uplink_down,          ///< host NIC outage; process survives (subject = host)
  uplink_up,
  server_down,          ///< server restart begins (subject = server index)
  server_up,            ///< server accepts logins again
  latency_spike_begin,  ///< magnitude multiplies every host's latency
  latency_spike_end,
  partition_begin,      ///< host `subject` moves to partition group 1
  partition_heal,       ///< host `subject` rejoins group 0
  manager_crash,        ///< control-plane process dies (subject unused)
  manager_recover,      ///< replacement manager replays the journal
  // Resource-exhaustion classes (appended — on-disk/journal values of the
  // kinds above never change).
  disk_full_begin,      ///< spool quota × magnitude for the episode
  disk_full_end,
  disk_slow_begin,      ///< periodic cuts throttled by factor `magnitude`
  disk_slow_end,
  mem_pressure_begin,   ///< record budget × magnitude + session ceiling
  mem_pressure_end,
  // Clock-fault classes (appended): they perturb a host's *virtual clock*
  // only — never topology, traffic, or any RNG stream at apply time — so
  // record content other than timestamps is invariant under them.
  clock_drift,          ///< set drift rate; magnitude = signed ppm
  clock_step,           ///< NTP-style step; magnitude = signed local seconds
  clock_freeze_begin,   ///< local clock halts (hung RTC / suspended VM)
  clock_freeze_end,     ///< clock resumes from the frozen reading
};

[[nodiscard]] std::string_view to_string(FaultKind k);

/// One scheduled fault. `subject` indexes hosts or servers at scenario
/// level (the Injector's bindings translate to net::NodeId).
struct FaultEvent {
  Time at = 0;
  FaultKind kind = FaultKind::host_crash;
  std::uint32_t subject = 0;
  double magnitude = 1.0;  ///< latency multiplier for spike episodes

  bool operator==(const FaultEvent&) const = default;
};

/// Churn knobs. Every *_mtbf of 0 disables that fault class. The defaults
/// model the paper's platform: PlanetLab hosts failing every ~16 days over a
/// 32-day campaign, with everything else off until enabled.
struct ChaosConfig {
  bool enabled = false;
  /// Mixed into the scenario seed so chaos draws are independent of the
  /// behavioural streams.
  std::uint64_t seed = splits::kChaosSeedDefault;

  Duration host_mtbf = days(16);          ///< per-host crash rate
  Duration host_reboot_mean = minutes(20);
  Duration uplink_mtbf = 0;               ///< per-host link-outage rate
  Duration uplink_outage_mean = minutes(10);
  Duration server_mtbf = 0;               ///< per-server restart rate
  Duration server_restart_mean = minutes(3);
  Duration latency_spike_mtbf = 0;        ///< measurement-wide episodes
  Duration latency_spike_mean = minutes(5);
  double latency_spike_factor = 8.0;
  Duration partition_mtbf = 0;            ///< measurement-wide episodes
  Duration partition_mean = minutes(15);
  double partition_fraction = 0.33;       ///< of hosts isolated per episode
  Duration manager_mtbf = 0;              ///< control-plane crash rate
  Duration manager_outage_mean = hours(1);
  /// Replay the journal when the outage ends. Disabling this models the
  /// pre-journal manager (the crash still fires; the recover event becomes
  /// a no-op), so the plan — and therefore every other fault stream — stays
  /// bit-identical across the ablation.
  bool manager_recovery = true;

  // --- Resource-exhaustion classes (fresh RNG splits: enabling any of
  // these never shifts the schedules above) ------------------------------
  Duration disk_full_mtbf = 0;            ///< per-host spool-quota collapse
  Duration disk_full_mean = hours(1);
  double disk_full_fraction = 0.25;       ///< quota multiplier during episode
  Duration disk_slow_mtbf = 0;            ///< per-host spool-cut throttling
  Duration disk_slow_mean = minutes(30);
  double disk_slow_factor = 4.0;          ///< cut-period multiplier
  Duration mem_pressure_mtbf = 0;         ///< per-host record-buffer squeeze
  Duration mem_pressure_mean = minutes(20);
  double mem_pressure_fraction = 0.5;     ///< record-budget multiplier

  // --- Clock-fault classes (fresh RNG splits: enabling any of these never
  // shifts the schedules above, and applying them consumes no RNG — the
  // same seed with clocks on/off yields the same records, differently
  // stamped) --------------------------------------------------------------
  Duration clock_drift_mtbf = 0;          ///< per-host drift re-draw cadence
  double clock_drift_ppm = 200.0;         ///< rate drawn uniform in ±ppm
  Duration clock_step_mtbf = 0;           ///< per-host NTP-style step rate
  Duration clock_step_max = 60.0;         ///< |step| bound in seconds (signed)
  Duration clock_freeze_mtbf = 0;         ///< per-host clock-halt episodes
  Duration clock_freeze_mean = minutes(2);

  // --- Resource budgets + degradation policy the scenarios hand every
  // honeypot (0 = unlimited; defaults reproduce the pre-budget plane) -----
  std::uint64_t disk_quota_bytes = 0;     ///< resident spool-byte quota
  std::uint64_t mem_budget_records = 0;   ///< unspooled log-tail ceiling
  std::uint32_t session_ceiling = 0;      ///< accepts allowed under mem_pressure
  std::uint32_t resend_credit = 0;        ///< manager recovery-resend window
  budget::DegradePolicy degrade_policy = budget::DegradePolicy::priority_shed;

  // --- Byzantine (wrongness) behaviors + their defenses. Own seed, fresh
  // splits: enabling lies never shifts any silence-fault schedule ---------
  ByzantineConfig byzantine;

  // --- Link-quality model the scenarios hand the network at construction
  // (all-zero defaults = the pristine link, bit-for-bit). These feed
  // net::LinkModel directly; the burst chain is Gilbert–Elliott -----------
  double link_burst_enter = 0;            ///< P(good → bad) per datagram
  double link_burst_exit = 0.3;           ///< P(bad → good) per datagram
  double link_burst_loss = 0.5;           ///< drop probability while bad
  double link_dup = 0;                    ///< datagram duplication probability
  double link_reorder = 0;                ///< datagram reordering probability
  Duration link_reorder_delay = 0.25;     ///< extra delay of a reordered copy

  // --- Recovery policy the scenarios apply alongside the plan ------------
  Duration retry_base = 30.0;             ///< honeypot reconnect backoff base
  Duration retry_cap = minutes(30);
  std::size_t retry_max = 6;              ///< per outage episode
  Duration spool_period = minutes(10);    ///< log-chunk gathering cadence
  Duration heartbeat_timeout = hours(2);  ///< manager watchdog stall limit
  std::size_t backup_servers = 1;         ///< standby servers for escalation

  /// Audit self-test fault: every Nth admitted record is destroyed AFTER
  /// the shed/stream accounting points, i.e. a deliberate silent loss no
  /// disposition counter sees (0 = off, the only sane setting outside the
  /// auditor's own negative tests). This is the "historical-style injected
  /// imbalance" the conservation ledger must catch: with it enabled the
  /// balance equation cannot hold, and an audited run must fail.
  std::uint32_t audit_selftest_drop = 0;
};

/// Counters of faults actually applied by an Injector.
struct FaultStats {
  std::uint64_t host_crashes = 0;
  std::uint64_t host_reboots = 0;
  std::uint64_t uplink_outages = 0;
  std::uint64_t server_restarts = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t partition_episodes = 0;  ///< host-level isolation events
  std::uint64_t manager_crashes = 0;     ///< control-plane crashes
  std::uint64_t manager_recoveries = 0;  ///< recover events delivered
  std::uint64_t disk_full_episodes = 0;
  std::uint64_t disk_slow_episodes = 0;
  std::uint64_t mem_pressure_episodes = 0;
  std::uint64_t clock_drift_changes = 0;
  std::uint64_t clock_steps = 0;
  std::uint64_t clock_freezes = 0;
  std::uint64_t connections_aborted = 0;
};

/// A pre-generated schedule of fault events, sorted by time (ties keep
/// generation order). Pure data: generation never touches a simulation.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Hand-crafted plan (tests, replaying recorded schedules). Events are
  /// stably sorted by time.
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Build a plan for `hosts` honeypot hosts and `servers` directory
  /// servers over `horizon` seconds. Deterministic in (config, rng state).
  /// Down windows are clamped to at least one second; a down window
  /// reaching past the horizon simply never emits its recovery event.
  [[nodiscard]] static FaultPlan generate(const ChaosConfig& config,
                                          std::size_t hosts,
                                          std::size_t servers,
                                          Duration horizon, Rng rng);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Applies a FaultPlan to a live world.
class Injector {
 public:
  /// Translation from plan subjects to the concrete world. `host_node` is
  /// required; the rest may be empty (those events become no-ops at the app
  /// level while the network-level effect still applies where possible).
  struct Bindings {
    std::size_t host_count = 0;
    std::function<net::NodeId(std::size_t)> host_node;
    std::function<void(std::size_t)> crash_host;  ///< app-level process death
    std::function<void(std::size_t)> stop_server;
    std::function<void(std::size_t)> start_server;
    std::function<void()> crash_manager;    ///< control-plane process death
    std::function<void()> recover_manager;  ///< journal replay + re-adoption
    /// Resource-fault hooks: (host, active, magnitude). Unset = no-op; the
    /// episodes are purely app-level (no network effect to fall back on).
    std::function<void(std::size_t, bool, double)> disk_full;
    std::function<void(std::size_t, bool, double)> disk_slow;
    std::function<void(std::size_t, bool, double)> mem_pressure;
  };

  Injector(net::Network& network, FaultPlan plan, Bindings bindings);

  /// Schedule the whole plan on the network's simulation. Events whose time
  /// already passed fire at the current instant, preserving plan order.
  void arm();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// The pre-fault-subsystem `host_mtbf` model, preserved bit-for-bit: an
  /// hourly Bernoulli grid over the fleet with immediate process crash and
  /// no host-down window. The caller starts the returned timer; draws come
  /// from `rng` in fleet order exactly as the historical inline loop did.
  [[nodiscard]] static std::unique_ptr<sim::PeriodicTimer> legacy_crash_grid(
      sim::Simulation& simulation, Duration mtbf,
      std::function<std::size_t()> fleet_size,
      std::function<void(std::size_t)> crash, Rng rng);

 private:
  void apply(const FaultEvent& event);

  net::Network& net_;
  FaultPlan plan_;
  Bindings bind_;
  FaultStats stats_;
};

}  // namespace edhp::fault
