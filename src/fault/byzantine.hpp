#pragma once
// Byzantine fault subsystem: infrastructure that *lies*.
//
// The honeypots see the eDonkey network only through directory servers
// (OFFER-FILES in, queries out) and, when harvesting, through shared-file
// lists volunteered by contacting peers. The fault layer (fault.hpp)
// breaks things by *silence* — crashes, outages, partitions; the abuse
// layer (abuse.hpp) breaks the conversation with garbage. This module
// adds *wrongness*: components that keep talking but serve falsehoods,
// the one failure family that biases a measurement without ever raising
// an error.
//
// Server misbehaviors (windowed, per directory server):
//   offer_drop         OFFER-FILES silently ignored — the honeypot thinks
//                      it is indexed and it is not;
//   offer_truncate     only a prefix fraction of each offered list lands;
//   stale_index        offers during the window are indexed only when the
//                      window ends (indexed late), and a keepalive offer
//                      evicts the session's previous entry immediately
//                      (evicted early) — the index serves stale truth;
//   fabricate_sources  GET-SOURCES replies are padded with forged entries:
//                      nonexistent peers, and decoy sources pointing real
//                      clients at files they never advertised;
//   corrupt_search     search replies have their file ids garbled.
//
// Peer misbehaviors (episodic, per honeypot):
//   forge_shared_list  a liar peer HELLOs, then volunteers a shared-file
//                      list claiming the honeypot's own advertised hashes
//                      back at it — poisoning the harvest;
//   replay_hello       one connection re-HELLOs under rotated user hashes,
//                      inflating the distinct-user count.
//
// Same determinism contract as the sibling layers: ByzantinePlan::generate
// is a pure function of (config, rng) on fresh split() sub-streams of
// rng.split(byzantine.seed) — enabling Byzantine behaviors never perturbs
// the fault or abuse schedules — and with `enabled == false` no liar node
// is created and no draw is consumed, so campaigns stay bit-identical.
//
// The detection/containment stack lives with the components it defends:
// honeypot self-probes + provenance tagging (honeypot/honeypot.hpp),
// manager health scores + server quarantine (honeypot/manager.hpp), and
// the server index consistency self-check (server/index.hpp).

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "fault/rng_splits.hpp"
#include "net/network.hpp"
#include "proto/messages.hpp"

namespace edhp::fault {

/// Marker in the low 64-bit word of every liar peer's user hash. Log
/// records keep only that low word, so a replayer rotating its hash must
/// rotate *within* it: the marker occupies the low 60 bits and the rotation
/// counter the top 4. The defenses never look at any of this — they must
/// catch liars from behavior alone — but tests use is_byzantine_user() to
/// prove that zero forged records leaked into a published log.
inline constexpr std::uint64_t kByzantineUserWord = 0x0B12A47BADC0FFEull;

/// Whether a log record's (truncated, 64-bit) user hash belongs to a liar
/// peer, regardless of its replay-rotation counter.
[[nodiscard]] inline constexpr bool is_byzantine_user(
    std::uint64_t user_word) noexcept {
  return (user_word & ((1ull << 60) - 1)) == kByzantineUserWord;
}

enum class ByzantineKind : std::uint8_t {
  offer_drop_begin,         ///< server starts dropping OFFER-FILES
  offer_drop_end,
  offer_truncate_begin,     ///< server keeps only a prefix of each list
  offer_truncate_end,
  stale_index_begin,        ///< offers deferred; keepalives evict early
  stale_index_end,          ///< deferred offers land (indexed late)
  fabricate_sources_begin,  ///< GET-SOURCES replies gain forged entries
  fabricate_sources_end,
  corrupt_search_begin,     ///< search replies garbled
  corrupt_search_end,
  forge_shared_list,        ///< one forged-list contact against a honeypot
  replay_hello,             ///< one rotated-hash HELLO burst
};

[[nodiscard]] std::string_view to_string(ByzantineKind k);

/// One scheduled Byzantine event. `subject` indexes servers for the
/// windowed server behaviors and honeypots for the peer behaviors.
struct ByzantineEvent {
  Time at = 0;
  ByzantineKind kind = ByzantineKind::offer_drop_begin;
  std::uint32_t subject = 0;
  double magnitude = 1.0;  ///< truncate keep-fraction for truncate windows

  bool operator==(const ByzantineEvent&) const = default;
};

/// Byzantine knobs, carried inside ChaosConfig. Every *_mtbf / *_mtba of 0
/// disables that behavior. The defense knobs ride along so one struct
/// configures both the attack and its containment.
struct ByzantineConfig {
  bool enabled = false;
  /// Mixed into the scenario seed; independent of chaos and abuse streams.
  std::uint64_t seed = splits::kByzantineSeedDefault;

  // --- Server misbehaviors (renewal windows per server) ------------------
  Duration offer_drop_mtbf = 0;
  Duration offer_drop_mean = minutes(30);
  Duration offer_truncate_mtbf = 0;
  Duration offer_truncate_mean = minutes(30);
  double offer_truncate_keep = 0.5;     ///< fraction of each list that lands
  Duration stale_index_mtbf = 0;
  Duration stale_index_mean = minutes(45);
  Duration fabricate_mtbf = 0;
  Duration fabricate_mean = minutes(30);
  std::size_t fabricate_count = 3;      ///< forged entries per reply
  Duration corrupt_search_mtbf = 0;
  Duration corrupt_search_mean = minutes(30);

  // --- Peer misbehaviors (arrival episodes per honeypot) -----------------
  Duration forge_list_mtba = 0;         ///< mean time between forged contacts
  std::size_t forge_list_files = 4;     ///< claimed entries per forged list
  Duration replay_hello_mtba = 0;
  std::size_t replay_hello_count = 3;   ///< HELLOs per replay burst
  std::size_t liars_per_class = 4;      ///< liar node pool per peer behavior

  // --- Defense knobs the scenarios propagate -----------------------------
  /// Ablation switch: false runs the campaign undefended — no self-probes,
  /// no provenance tagging, no quarantine — so liar records flow straight
  /// into the published log. The attack side is unaffected (same plan, same
  /// draws), which makes defended/undefended runs directly comparable.
  bool defend = true;
  Duration probe_period = minutes(10);  ///< advertise-and-verify cadence
  Duration probe_timeout = minutes(2);  ///< unanswered probe = miss
  double quarantine_threshold = 6.0;    ///< health score tripping quarantine
  Duration quarantine_cooloff = minutes(30);  ///< reinstate after
};

/// Counters of Byzantine behavior actually delivered by an injector.
struct ByzantineStats {
  std::uint64_t offer_drop_episodes = 0;
  std::uint64_t offer_truncate_episodes = 0;
  std::uint64_t stale_index_episodes = 0;
  std::uint64_t fabricate_episodes = 0;
  std::uint64_t corrupt_search_episodes = 0;
  std::uint64_t forged_lists_sent = 0;
  std::uint64_t replayed_hellos_sent = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connects_refused = 0;
  std::uint64_t messages_sent = 0;
};

/// A pre-generated, seed-deterministic schedule of Byzantine events, sorted
/// by time (ties keep generation order). Pure data, like FaultPlan.
class ByzantinePlan {
 public:
  ByzantinePlan() = default;

  /// Hand-crafted plan (tests). Events are stably sorted by time.
  explicit ByzantinePlan(std::vector<ByzantineEvent> events);

  /// Build a plan for `servers` directory servers and `honeypots` honeypot
  /// targets over `horizon` seconds. Each (behavior, subject) pair draws
  /// from its own split stream (registry: fault/rng_splits.hpp).
  [[nodiscard]] static ByzantinePlan generate(const ByzantineConfig& config,
                                              std::size_t honeypots,
                                              std::size_t servers,
                                              Duration horizon, Rng rng);

  [[nodiscard]] const std::vector<ByzantineEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<ByzantineEvent> events_;
};

/// Binds a ByzantinePlan to a live world: flips the server-lie switches
/// through scenario-provided hooks and runs the liar peers.
class ByzantineInjector {
 public:
  /// Translation from plan subjects to the concrete world. The server-lie
  /// hooks mirror fault::Injector's resource hooks: unset = no-op.
  struct Bindings {
    std::size_t honeypot_count = 0;
    std::function<net::NodeId(std::size_t)> honeypot_node;
    std::size_t server_count = 0;
    /// (server, active): silently ignore OFFER-FILES during the window.
    std::function<void(std::size_t, bool)> drop_offers;
    /// (server, active, keep): index only a prefix fraction of each list.
    std::function<void(std::size_t, bool, double)> truncate_offers;
    /// (server, active): defer offers; apply them when deactivated.
    std::function<void(std::size_t, bool)> stale_index;
    /// (server, active, count, seed): pad GET-SOURCES replies with forged
    /// entries; `seed` makes the forged identities deterministic.
    std::function<void(std::size_t, bool, std::size_t, std::uint64_t)>
        fabricate_sources;
    /// (server, active, seed): garble search replies.
    std::function<void(std::size_t, bool, std::uint64_t)> corrupt_search;
    /// The honeypot's currently advertised files — the material a forging
    /// peer claims back at it.
    std::function<std::vector<proto::PublishedFile>(std::size_t)>
        advertised_files;
  };

  /// `rng` seeds liar content (forged identities, per-window lie seeds);
  /// independent of the plan's arrival draws.
  ByzantineInjector(net::Network& network, ByzantinePlan plan,
                    ByzantineConfig config, Bindings bindings, Rng rng);

  /// Create the liar node pools and schedule the whole plan. Call only
  /// when the campaign wants Byzantine behavior: node creation shifts
  /// every later IP assignment (see Network::add_node).
  void arm();

  [[nodiscard]] const ByzantineStats& stats() const noexcept { return stats_; }

 private:
  void run_event(std::size_t index);
  void forge_episode(std::size_t index, std::uint32_t subject);
  void replay_episode(std::size_t index, std::uint32_t subject);
  void replay_step(net::EndpointPtr ep, std::uint64_t episode,
                   std::size_t sent);

  net::Network& net_;
  ByzantinePlan plan_;
  ByzantineConfig config_;
  Bindings bind_;
  Rng rng_;
  ByzantineStats stats_;
  /// Liar node pools: [0] = forgers, [1] = replayers; filled at arm().
  std::array<std::vector<net::NodeId>, 2> pools_;
};

}  // namespace edhp::fault
