#pragma once
// Central registry of RNG split indices.
//
// Every fault/abuse/byzantine subsystem is a pure function of
// (config, rng) drawing from `Rng::split(index)` sub-streams, and
// `split()` never advances the parent stream — so two subsystems stay
// independent exactly as long as no two of them split the *same parent*
// with the *same index*. Historically those indices were magic numbers
// scattered across three files; this header enumerates them per parent
// stream and static_asserts that no group contains a collision, so adding
// a split that would silently alias an existing stream fails to compile.
//
// Groups (one per parent stream):
//   scenario   — splits of the main simulation RNG taken by the scenario
//                layer (scenario.cpp / multi_server.cpp);
//   fault      — category splits of rng.split(chaos.seed) in
//                FaultPlan::generate;
//   abuse      — class splits of rng.split(abuse.seed) in
//                AbusePlan::generate, plus the content split of the
//                injector's own stream;
//   byzantine  — behavior splits of rng.split(byzantine.seed) in
//                ByzantinePlan::generate, plus the liar-content split.
//
// Per-subject second-level splits (`category_rng.split(h)`) use the
// subject index itself and need no registry: within one category stream
// the subjects are distinct by construction.

#include <cstddef>
#include <cstdint>

namespace edhp::fault::splits {

namespace detail {
template <std::size_t N>
[[nodiscard]] constexpr bool all_distinct(const std::uint64_t (&v)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      if (v[i] == v[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

// --- Scenario layer: splits of the main simulation RNG -----------------
inline constexpr std::uint64_t kCatalog = 0xCA7A;        ///< file catalog shuffle
inline constexpr std::uint64_t kPairWeights = 0xBEEF;    ///< per-host visibility weights
inline constexpr std::uint64_t kFileIds = 0xF11E;        ///< advertised fake-file ids
inline constexpr std::uint64_t kPopulation = 0x90B;      ///< peer population engine
inline constexpr std::uint64_t kLegacyCrashGrid = 0xDEAD;///< pre-chaos hourly crash grid
inline constexpr std::uint64_t kTopPeer = 0x709;         ///< the Fig 8/9 hyperactive peer
inline constexpr std::uint64_t kGreedyDemand = 0xDE3A;   ///< greedy per-file demand draws
inline constexpr std::uint64_t kMultiServerResidents = 0x4E5; ///< resident pools per server
inline constexpr std::uint64_t kChaosSeedDefault = 0xFA1757;  ///< ChaosConfig::seed
inline constexpr std::uint64_t kAbuseSeedDefault = 0xAB05E;   ///< AbuseConfig::seed
inline constexpr std::uint64_t kByzantineSeedDefault = 0xB15A17; ///< ByzantineConfig::seed

inline constexpr std::uint64_t kScenarioSplits[] = {
    kCatalog,         kPairWeights,      kFileIds,
    kPopulation,      kLegacyCrashGrid,  kTopPeer,
    kGreedyDemand,    kMultiServerResidents,
    kChaosSeedDefault, kAbuseSeedDefault, kByzantineSeedDefault,
};
static_assert(detail::all_distinct(kScenarioSplits),
              "scenario-level RNG split collision");

// --- FaultPlan: category splits of rng.split(chaos.seed) ---------------
inline constexpr std::uint64_t kFaultHost = 1;
inline constexpr std::uint64_t kFaultUplink = 2;
inline constexpr std::uint64_t kFaultServer = 3;
inline constexpr std::uint64_t kFaultLatency = 4;
inline constexpr std::uint64_t kFaultPartition = 5;
inline constexpr std::uint64_t kFaultManager = 6;
inline constexpr std::uint64_t kFaultDiskFull = 7;
inline constexpr std::uint64_t kFaultDiskSlow = 8;
inline constexpr std::uint64_t kFaultMemPressure = 9;
inline constexpr std::uint64_t kFaultClockDrift = 10;
inline constexpr std::uint64_t kFaultClockStep = 11;
inline constexpr std::uint64_t kFaultClockFreeze = 12;

inline constexpr std::uint64_t kFaultSplits[] = {
    kFaultHost,      kFaultUplink,    kFaultServer,
    kFaultLatency,   kFaultPartition, kFaultManager,
    kFaultDiskFull,  kFaultDiskSlow,  kFaultMemPressure,
    kFaultClockDrift, kFaultClockStep, kFaultClockFreeze,
};
static_assert(detail::all_distinct(kFaultSplits),
              "FaultPlan category split collision");

// --- AbusePlan: class splits of rng.split(abuse.seed) ------------------
// Class c draws from split(kAbuseClassBase + c), c = 0..3; the injector's
// content stream is a scenario-provided split of the same parent.
inline constexpr std::uint64_t kAbuseClassBase = 1;  ///< splits 1..4
inline constexpr std::uint64_t kAbuseClassCount = 4;
inline constexpr std::uint64_t kAbuseContent = 0xEE; ///< injector content stream

static_assert(kAbuseContent >= kAbuseClassBase + kAbuseClassCount,
              "abuse content split collides with a class split");

// --- ByzantinePlan: behavior splits of rng.split(byzantine.seed) -------
inline constexpr std::uint64_t kByzOfferDrop = 1;
inline constexpr std::uint64_t kByzOfferTruncate = 2;
inline constexpr std::uint64_t kByzStaleIndex = 3;
inline constexpr std::uint64_t kByzFabricateSources = 4;
inline constexpr std::uint64_t kByzCorruptSearch = 5;
inline constexpr std::uint64_t kByzForgeList = 6;
inline constexpr std::uint64_t kByzReplayHello = 7;
inline constexpr std::uint64_t kByzContent = 0xEE;   ///< liar identities / forged payloads

inline constexpr std::uint64_t kByzantineSplits[] = {
    kByzOfferDrop,  kByzOfferTruncate,    kByzStaleIndex,
    kByzFabricateSources, kByzCorruptSearch, kByzForgeList,
    kByzReplayHello, kByzContent,
};
static_assert(detail::all_distinct(kByzantineSplits),
              "ByzantinePlan behavior split collision");

}  // namespace edhp::fault::splits
