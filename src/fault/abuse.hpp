#pragma once
// Adversarial-traffic subsystem.
//
// The paper's honeypots sat on the open 2008 eDonkey network, where any
// peer could send garbage bytes, flood connections, or hold sessions open
// — and the platform had to keep logging through it. This module is the
// traffic-level sibling of the fault subsystem (fault.hpp): where
// FaultPlan breaks the *infrastructure*, AbusePlan breaks the *protocol
// conversation*, spawning hostile peers against the honeypots and the
// directory servers:
//
//   byte corruptor      opens a connection and speaks valid eDonkey whose
//                       wire bytes are flipped/truncated/extended in flight
//                       (net::Network corruption hook) — exercises every
//                       DecodeError path under fire;
//   connection flooder  bursts many connections from one node and holds
//                       them open doing nothing — exhausts session slots;
//   slowloris           completes the HELLO (or LOGIN) handshake, then goes
//                       silent holding the session for hours;
//   oversize abuser     sends protocol-valid but maximal messages: huge tag
//                       lists, 255-entry offer/shared-list floods, long
//                       search queries — burns parse and index work.
//
// Same determinism contract as the fault layer: AbusePlan::generate is a
// pure function of (config, rng) on split() sub-streams — adding one abuse
// class never shifts another's schedule — and with `enabled == false` no
// attacker node is ever created and no RNG draw is consumed, so the
// campaigns stay bit-identical to an abuse-free build.

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "fault/rng_splits.hpp"
#include "net/network.hpp"

namespace edhp::fault {

/// Low 64-bit word of every hostile peer's user hash. Log records store the
/// low word (see honeypot truncate_user), so attacker-generated records are
/// exactly those with `record.user == kAbuseUserWord` — the retention tests
/// and the ablation bench filter on it.
inline constexpr std::uint64_t kAbuseUserWord = 0x0AB05EBADC0FFEEull;

enum class AbuseKind : std::uint8_t {
  corrupt_episode,    ///< garbled-wire burst against one target
  connection_flood,   ///< connect burst held open from one node
  slowloris,          ///< handshake then silence
  oversize_messages,  ///< protocol-valid maximal messages
};

[[nodiscard]] std::string_view to_string(AbuseKind k);

/// One scheduled attack episode. `target` indexes honeypots first, then
/// servers: target < honeypot_count is honeypot `target`, otherwise server
/// `target - honeypot_count`.
struct AbuseEvent {
  Time at = 0;
  AbuseKind kind = AbuseKind::corrupt_episode;
  std::uint32_t target = 0;

  bool operator==(const AbuseEvent&) const = default;
};

/// Attack-mix knobs. Every *_mtba of 0 disables that class; `intensity`
/// divides every mean inter-arrival time, so one knob scales the whole mix.
struct AbuseConfig {
  bool enabled = false;
  /// Mixed into the scenario seed so abuse draws are independent of both
  /// the behavioural streams and the chaos streams.
  std::uint64_t seed = splits::kAbuseSeedDefault;
  double intensity = 1.0;

  /// Per-target mean time between episodes, per class.
  Duration corrupt_mtba = hours(6);
  Duration flood_mtba = hours(8);
  Duration slowloris_mtba = hours(4);
  Duration oversize_mtba = hours(6);

  // --- Episode shapes ------------------------------------------------------
  std::size_t corrupt_messages = 16;  ///< garbled packets per episode
  double corrupt_flip = 0.9;          ///< per-message mutation probabilities
  double corrupt_truncate = 0.3;
  double corrupt_extend = 0.3;
  Duration corrupt_spacing = 0.25;

  std::size_t flood_connections = 96;  ///< connects per flood episode
  Duration flood_spacing = 0.05;
  Duration flood_hold = minutes(10);   ///< idle hold before the attacker hangs up

  Duration slowloris_hold = hours(6);  ///< post-handshake silence

  std::size_t oversize_messages = 8;   ///< maximal messages per episode
  std::size_t oversize_entries = 255;  ///< list entries per abusive message
  std::size_t oversize_tags = 120;     ///< tags per abusive HELLO
  Duration oversize_spacing = 0.5;

  /// Hostile node pool per class (episodes round-robin over it).
  std::size_t attackers_per_class = 4;
};

/// Counters of attack work actually performed by an AbuseInjector.
struct AbuseStats {
  std::uint64_t corrupt_episodes = 0;
  std::uint64_t flood_episodes = 0;
  std::uint64_t slowloris_episodes = 0;
  std::uint64_t oversize_episodes = 0;
  std::uint64_t connections_opened = 0;  ///< attacker connects that completed
  std::uint64_t connects_refused = 0;    ///< refused at transport level
  std::uint64_t messages_sent = 0;       ///< hostile packets put on the wire
};

/// A pre-generated, seed-deterministic schedule of attack episodes, sorted
/// by time (ties keep generation order). Pure data, like FaultPlan.
class AbusePlan {
 public:
  AbusePlan() = default;

  /// Hand-crafted plan (tests). Events are stably sorted by time.
  explicit AbusePlan(std::vector<AbuseEvent> events);

  /// Build a plan against `honeypots` honeypots and `servers` servers over
  /// `horizon` seconds. Each (class, target) pair draws its arrival process
  /// from its own split stream.
  [[nodiscard]] static AbusePlan generate(const AbuseConfig& config,
                                          std::size_t honeypots,
                                          std::size_t servers,
                                          Duration horizon, Rng rng);

  [[nodiscard]] const std::vector<AbuseEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<AbuseEvent> events_;
};

/// Binds an AbusePlan to a live world: creates the hostile node pools and
/// runs every episode on the simulation engine.
class AbuseInjector {
 public:
  /// Translation from plan targets to the concrete world.
  struct Bindings {
    std::size_t honeypot_count = 0;
    std::function<net::NodeId(std::size_t)> honeypot_node;
    std::size_t server_count = 0;
    std::function<net::NodeId(std::size_t)> server_node;
  };

  /// `rng` seeds per-episode content draws (message payloads, corruption
  /// streams); it is independent of the plan's arrival draws.
  AbuseInjector(net::Network& network, AbusePlan plan, AbuseConfig config,
                Bindings bindings, Rng rng);

  /// Create the attacker node pools and schedule the whole plan. Must be
  /// called only when the campaign actually wants abuse: node creation
  /// shifts every later IP assignment (see Network::add_node).
  void arm();

  [[nodiscard]] const AbuseStats& stats() const noexcept { return stats_; }

 private:
  void run_episode(std::size_t index);
  [[nodiscard]] net::NodeId target_node(std::uint32_t target) const;
  [[nodiscard]] bool target_is_server(std::uint32_t target) const noexcept {
    return target >= bind_.honeypot_count;
  }
  [[nodiscard]] net::NodeId attacker_for(AbuseKind kind,
                                         std::uint32_t target) const;
  /// The hostile identity used for a (kind, target) pair; its low word is
  /// kAbuseUserWord so attacker log records are filterable.
  [[nodiscard]] static UserId abuse_user(AbuseKind kind, std::uint32_t target);

  void corrupt_burst(net::EndpointPtr ep, net::NodeId attacker,
                     std::uint32_t target, std::size_t remaining);
  void flood_step(net::NodeId attacker, net::NodeId victim,
                  std::size_t remaining);
  /// A valid handshake packet for the target's channel.
  [[nodiscard]] net::Bytes handshake_packet(AbuseKind kind,
                                            std::uint32_t target) const;
  void oversize_burst(net::EndpointPtr ep, std::uint32_t target,
                      std::size_t remaining, Rng rng);

  net::Network& net_;
  AbusePlan plan_;
  AbuseConfig config_;
  Bindings bind_;
  Rng rng_;
  AbuseStats stats_;
  /// One hostile node pool per AbuseKind, filled at arm().
  std::array<std::vector<net::NodeId>, 4> pools_;
};

}  // namespace edhp::fault
