#include "fault/abuse.hpp"

#include "fault/rng_splits.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "proto/messages.hpp"
#include "proto/opcodes.hpp"

namespace edhp::fault {
namespace {

/// Append one (class, target) exponential arrival process to `out`.
void arrivals(std::vector<AbuseEvent>& out, Rng& rng, Duration mtba,
              double intensity, Duration horizon, AbuseKind kind,
              std::uint32_t target) {
  if (mtba <= 0 || intensity <= 0) return;
  const Duration mean = mtba / intensity;
  Time t = 0;
  while (true) {
    t += rng.exponential(mean);
    if (t >= horizon) return;
    out.push_back({t, kind, target});
  }
}

/// A plausible 2008 client name for a hostile peer.
std::string attacker_name(std::uint32_t target) {
  return "lphant-" + std::to_string(target);
}

}  // namespace

std::string_view to_string(AbuseKind k) {
  switch (k) {
    case AbuseKind::corrupt_episode: return "corrupt_episode";
    case AbuseKind::connection_flood: return "connection_flood";
    case AbuseKind::slowloris: return "slowloris";
    case AbuseKind::oversize_messages: return "oversize_messages";
  }
  return "unknown";
}

AbusePlan::AbusePlan(std::vector<AbuseEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const AbuseEvent& a, const AbuseEvent& b) {
                     return a.at < b.at;
                   });
}

AbusePlan AbusePlan::generate(const AbuseConfig& config, std::size_t honeypots,
                              std::size_t servers, Duration horizon, Rng rng) {
  AbusePlan plan;
  if (!config.enabled || horizon <= 0) return plan;
  auto& out = plan.events_;
  const std::size_t targets = honeypots + servers;

  // Mirror FaultPlan::generate: each (class, target) pair owns a split
  // stream (registry: fault/rng_splits.hpp), so tuning one class (or adding
  // a target) never reshuffles the arrival times of another.
  struct Class {
    AbuseKind kind;
    Duration mtba;
  };
  const Class classes[] = {
      {AbuseKind::corrupt_episode, config.corrupt_mtba},
      {AbuseKind::connection_flood, config.flood_mtba},
      {AbuseKind::slowloris, config.slowloris_mtba},
      {AbuseKind::oversize_messages, config.oversize_mtba},
  };
  static_assert(std::size(classes) == splits::kAbuseClassCount,
                "register new abuse classes in fault/rng_splits.hpp");
  for (std::size_t c = 0; c < std::size(classes); ++c) {
    const Rng class_rng = rng.split(splits::kAbuseClassBase + c);
    for (std::size_t t = 0; t < targets; ++t) {
      Rng r = class_rng.split(t);
      arrivals(out, r, classes[c].mtba, config.intensity, horizon,
               classes[c].kind, static_cast<std::uint32_t>(t));
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const AbuseEvent& a, const AbuseEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

AbuseInjector::AbuseInjector(net::Network& network, AbusePlan plan,
                             AbuseConfig config, Bindings bindings, Rng rng)
    : net_(network),
      plan_(std::move(plan)),
      config_(config),
      bind_(std::move(bindings)),
      rng_(rng) {
  if (!plan_.empty()) {
    if (bind_.honeypot_count > 0 && !bind_.honeypot_node) {
      throw std::invalid_argument(
          "fault::AbuseInjector: honeypot_node binding required");
    }
    if (bind_.server_count > 0 && !bind_.server_node) {
      throw std::invalid_argument(
          "fault::AbuseInjector: server_node binding required");
    }
  }
}

void AbuseInjector::arm() {
  if (plan_.empty()) return;
  // Hostile nodes are firewalled (LowID): they dial out but never accept.
  // Created in fixed class order so the IP layout is a pure function of the
  // legit topology plus attackers_per_class.
  const std::size_t per_class = std::max<std::size_t>(1, config_.attackers_per_class);
  for (auto& pool : pools_) {
    pool.reserve(per_class);
    for (std::size_t i = 0; i < per_class; ++i) {
      pool.push_back(net_.add_node(false));
    }
  }
  auto& simulation = net_.simulation();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const Time at = std::max(plan_.events()[i].at, simulation.now());
    simulation.schedule_at(at, [this, i] { run_episode(i); });
  }
}

net::NodeId AbuseInjector::target_node(std::uint32_t target) const {
  const auto t = static_cast<std::size_t>(target);
  if (t < bind_.honeypot_count) return bind_.honeypot_node(t);
  return bind_.server_node(t - bind_.honeypot_count);
}

net::NodeId AbuseInjector::attacker_for(AbuseKind kind,
                                        std::uint32_t target) const {
  const auto& pool = pools_[static_cast<std::size_t>(kind)];
  return pool[target % pool.size()];
}

UserId AbuseInjector::abuse_user(AbuseKind kind, std::uint32_t target) {
  // Low word == kAbuseUserWord for every attacker: honeypot logs keep the
  // low word, so one equality test isolates hostile records. The high word
  // keeps identities distinct per (class, target).
  return UserId::from_words(
      kAbuseUserWord,
      (static_cast<std::uint64_t>(kind) << 32) | target);
}

net::Bytes AbuseInjector::handshake_packet(AbuseKind kind,
                                           std::uint32_t target) const {
  const UserId user = abuse_user(kind, target);
  if (target_is_server(target)) {
    proto::LoginRequest login;
    login.user = user;
    login.port = 4662;
    login.tags.push_back(proto::Tag::string_tag(proto::kTagName,
                                                attacker_name(target)));
    login.tags.push_back(proto::Tag::u32_tag(proto::kTagVersion, 0x3C));
    return proto::encode(login);
  }
  proto::Hello hello;
  hello.user = user;
  hello.port = 4662;
  hello.tags.push_back(proto::Tag::string_tag(proto::kTagName,
                                              attacker_name(target)));
  hello.tags.push_back(proto::Tag::u32_tag(proto::kTagVersion, 0x3C));
  return proto::encode(hello);
}

void AbuseInjector::run_episode(std::size_t index) {
  const AbuseEvent& event = plan_.events()[index];
  const net::NodeId attacker = attacker_for(event.kind, event.target);
  const net::NodeId victim = target_node(event.target);
  switch (event.kind) {
    case AbuseKind::corrupt_episode: {
      ++stats_.corrupt_episodes;
      // Per-episode mutation stream derived from the injector's content rng
      // by event index: re-ordering other classes cannot change it.
      net::Network::CorruptionSpec spec;
      spec.flip = config_.corrupt_flip;
      spec.truncate = config_.corrupt_truncate;
      spec.extend = config_.corrupt_extend;
      Rng seed_rng = rng_.split(index).split(0);
      spec.seed = seed_rng();
      net_.set_corruption(attacker, spec);
      const std::uint32_t target = event.target;
      net_.connect(attacker, victim,
                   [this, attacker, target](net::EndpointPtr ep) {
                     if (!ep) {
                       ++stats_.connects_refused;
                       net_.clear_corruption(attacker);
                       return;
                     }
                     ++stats_.connections_opened;
                     corrupt_burst(std::move(ep), attacker, target,
                                   config_.corrupt_messages);
                   });
      break;
    }
    case AbuseKind::connection_flood: {
      ++stats_.flood_episodes;
      // All connections from ONE node, so a per-remote-node admission
      // bucket has something to key on — exactly the defense under test.
      flood_step(attacker, victim, config_.flood_connections);
      break;
    }
    case AbuseKind::slowloris: {
      ++stats_.slowloris_episodes;
      const std::uint32_t target = event.target;
      net_.connect(attacker, victim, [this, target](net::EndpointPtr ep) {
        if (!ep) {
          ++stats_.connects_refused;
          return;
        }
        ++stats_.connections_opened;
        // Complete the handshake like an honest client, then hold the
        // session silently: without idle reaping this pins a slot for
        // slowloris_hold.
        ep->send(handshake_packet(AbuseKind::slowloris, target));
        ++stats_.messages_sent;
        net_.simulation().schedule_in(config_.slowloris_hold,
                                      [ep] { ep->close(); });
      });
      break;
    }
    case AbuseKind::oversize_messages: {
      ++stats_.oversize_episodes;
      const std::uint32_t target = event.target;
      Rng content = rng_.split(index).split(1);
      net_.connect(attacker, victim,
                   [this, target, content](net::EndpointPtr ep) {
                     if (!ep) {
                       ++stats_.connects_refused;
                       return;
                     }
                     ++stats_.connections_opened;
                     oversize_burst(std::move(ep), target,
                                    config_.oversize_messages, content);
                   });
      break;
    }
  }
}

void AbuseInjector::corrupt_burst(net::EndpointPtr ep, net::NodeId attacker,
                                  std::uint32_t target, std::size_t remaining) {
  // The victim usually hangs up on the first garbled packet; once the
  // endpoint is closed (or the burst is spent) the corruptor retires.
  if (remaining == 0 || !ep->open()) {
    net_.clear_corruption(attacker);
    ep->close();
    return;
  }
  ep->send(handshake_packet(AbuseKind::corrupt_episode, target));
  ++stats_.messages_sent;
  net_.simulation().schedule_in(
      config_.corrupt_spacing,
      [this, ep = std::move(ep), attacker, target, remaining]() mutable {
        corrupt_burst(std::move(ep), attacker, target, remaining - 1);
      });
}

void AbuseInjector::flood_step(net::NodeId attacker, net::NodeId victim,
                               std::size_t remaining) {
  if (remaining == 0) return;
  net_.connect(attacker, victim, [this](net::EndpointPtr ep) {
    if (!ep) {
      ++stats_.connects_refused;
      return;
    }
    ++stats_.connections_opened;
    // Hold the connection open doing nothing; the captured shared_ptr keeps
    // it alive until the attacker hangs up (a handshake-timeout defense
    // reaps it much earlier).
    net_.simulation().schedule_in(config_.flood_hold, [ep] { ep->close(); });
  });
  net_.simulation().schedule_in(config_.flood_spacing,
                                [this, attacker, victim, remaining] {
                                  flood_step(attacker, victim, remaining - 1);
                                });
}

void AbuseInjector::oversize_burst(net::EndpointPtr ep, std::uint32_t target,
                                   std::size_t remaining, Rng rng) {
  if (remaining == 0 || !ep->open()) {
    ep->close();
    return;
  }
  const bool to_server = target_is_server(target);
  const UserId user = abuse_user(AbuseKind::oversize_messages, target);
  proto::AnyMessage msg;
  if (remaining == config_.oversize_messages) {
    // Open with a handshake bloated to the tag-count ceiling.
    if (to_server) {
      proto::LoginRequest login;
      login.user = user;
      login.port = 4662;
      for (std::size_t i = 0; i < config_.oversize_tags; ++i) {
        login.tags.push_back(proto::Tag::u32_tag(
            static_cast<std::uint8_t>(rng.below(256)),
            static_cast<std::uint32_t>(rng.below(1u << 31))));
      }
      msg = std::move(login);
    } else {
      proto::Hello hello;
      hello.user = user;
      hello.port = 4662;
      for (std::size_t i = 0; i < config_.oversize_tags; ++i) {
        hello.tags.push_back(proto::Tag::u32_tag(
            static_cast<std::uint8_t>(rng.below(256)),
            static_cast<std::uint32_t>(rng.below(1u << 31))));
      }
      msg = std::move(hello);
    }
  } else if (rng.chance(0.3)) {
    // Long keyword query (server) / shared-list probe amplification
    // (honeypot answers with its full advertised list).
    if (to_server) {
      proto::SearchRequest search;
      search.query.assign(200, 'a' + static_cast<char>(rng.below(26)));
      msg = std::move(search);
    } else {
      msg = proto::AskSharedFiles{};
    }
  } else {
    // A maximal file list: every entry a fresh fake hash and name.
    std::vector<proto::PublishedFile> files;
    files.reserve(config_.oversize_entries);
    for (std::size_t i = 0; i < config_.oversize_entries; ++i) {
      proto::PublishedFile f;
      const std::uint64_t lo = rng();
      f.file = FileId::from_words(lo, rng());
      f.port = 4662;
      f.name = "spam-" + std::to_string(rng.below(1u << 20)) + ".avi";
      f.size = static_cast<std::uint32_t>(rng.below(700u << 20));
      files.push_back(std::move(f));
    }
    if (to_server) {
      msg = proto::OfferFiles{std::move(files)};
    } else {
      msg = proto::AskSharedFilesAnswer{std::move(files)};
    }
  }
  ep->send(proto::encode(msg));
  ++stats_.messages_sent;
  net_.simulation().schedule_in(
      config_.oversize_spacing,
      [this, ep = std::move(ep), target, remaining, rng]() mutable {
        oversize_burst(std::move(ep), target, remaining - 1, rng);
      });
}

}  // namespace edhp::fault
