#include "fault/byzantine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "proto/opcodes.hpp"

namespace edhp::fault {
namespace {

/// Minimum width of any lie window (same rationale as fault.cpp: zero-length
/// windows would make begin/end tie and the effect scheduling-dependent).
constexpr Duration kMinWindow = 1.0;

/// Spacing of the messages inside one liar contact.
constexpr Duration kForgeListDelay = 2.0;
constexpr Duration kLiarLinger = 5.0;
constexpr Duration kReplaySpacing = 0.5;

/// Draw alternating begin/end windows of one renewal process (the fault.cpp
/// pattern, duplicated here so the two subsystems stay header-independent).
void renewal_windows(std::vector<ByzantineEvent>& out, Rng& rng, Duration mtbf,
                     Duration mean, Duration horizon, ByzantineKind begin,
                     ByzantineKind end, std::uint32_t subject,
                     double magnitude) {
  if (mtbf <= 0) return;
  Time t = 0;
  while (true) {
    t += rng.exponential(mtbf);
    if (t >= horizon) return;
    out.push_back({t, begin, subject, magnitude});
    const Duration window = std::max(kMinWindow, rng.exponential(mean));
    if (t + window < horizon) {
      out.push_back({t + window, end, subject, magnitude});
    }
    t += window;
  }
}

/// Append one episodic arrival process (the abuse.cpp pattern).
void arrivals(std::vector<ByzantineEvent>& out, Rng& rng, Duration mtba,
              Duration horizon, ByzantineKind kind, std::uint32_t subject) {
  if (mtba <= 0) return;
  Time t = 0;
  while (true) {
    t += rng.exponential(mtba);
    if (t >= horizon) return;
    out.push_back({t, kind, subject, 1.0});
  }
}

/// A plausible 2008 client name for a liar peer.
std::string liar_name(std::uint32_t subject) {
  return "emule-" + std::to_string(subject);
}

}  // namespace

std::string_view to_string(ByzantineKind k) {
  switch (k) {
    case ByzantineKind::offer_drop_begin: return "offer_drop_begin";
    case ByzantineKind::offer_drop_end: return "offer_drop_end";
    case ByzantineKind::offer_truncate_begin: return "offer_truncate_begin";
    case ByzantineKind::offer_truncate_end: return "offer_truncate_end";
    case ByzantineKind::stale_index_begin: return "stale_index_begin";
    case ByzantineKind::stale_index_end: return "stale_index_end";
    case ByzantineKind::fabricate_sources_begin:
      return "fabricate_sources_begin";
    case ByzantineKind::fabricate_sources_end: return "fabricate_sources_end";
    case ByzantineKind::corrupt_search_begin: return "corrupt_search_begin";
    case ByzantineKind::corrupt_search_end: return "corrupt_search_end";
    case ByzantineKind::forge_shared_list: return "forge_shared_list";
    case ByzantineKind::replay_hello: return "replay_hello";
  }
  return "unknown";
}

ByzantinePlan::ByzantinePlan(std::vector<ByzantineEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ByzantineEvent& a, const ByzantineEvent& b) {
                     return a.at < b.at;
                   });
}

ByzantinePlan ByzantinePlan::generate(const ByzantineConfig& config,
                                      std::size_t honeypots,
                                      std::size_t servers, Duration horizon,
                                      Rng rng) {
  ByzantinePlan plan;
  if (!config.enabled || horizon <= 0) return plan;
  auto& out = plan.events_;

  // Each (behavior, subject) pair owns a split stream (registry:
  // fault/rng_splits.hpp), so tuning one lie never reshuffles another.
  struct Window {
    std::uint64_t split;
    ByzantineKind begin, end;
    Duration mtbf, mean;
    double magnitude;
  };
  const Window windows[] = {
      {splits::kByzOfferDrop, ByzantineKind::offer_drop_begin,
       ByzantineKind::offer_drop_end, config.offer_drop_mtbf,
       config.offer_drop_mean, 1.0},
      {splits::kByzOfferTruncate, ByzantineKind::offer_truncate_begin,
       ByzantineKind::offer_truncate_end, config.offer_truncate_mtbf,
       config.offer_truncate_mean, config.offer_truncate_keep},
      {splits::kByzStaleIndex, ByzantineKind::stale_index_begin,
       ByzantineKind::stale_index_end, config.stale_index_mtbf,
       config.stale_index_mean, 1.0},
      {splits::kByzFabricateSources, ByzantineKind::fabricate_sources_begin,
       ByzantineKind::fabricate_sources_end, config.fabricate_mtbf,
       config.fabricate_mean, 1.0},
      {splits::kByzCorruptSearch, ByzantineKind::corrupt_search_begin,
       ByzantineKind::corrupt_search_end, config.corrupt_search_mtbf,
       config.corrupt_search_mean, 1.0},
  };
  for (const auto& w : windows) {
    const Rng behavior_rng = rng.split(w.split);
    for (std::size_t s = 0; s < servers; ++s) {
      Rng r = behavior_rng.split(s);
      renewal_windows(out, r, w.mtbf, w.mean, horizon, w.begin, w.end,
                      static_cast<std::uint32_t>(s), w.magnitude);
    }
  }

  const Rng forge_rng = rng.split(splits::kByzForgeList);
  for (std::size_t h = 0; h < honeypots; ++h) {
    Rng r = forge_rng.split(h);
    arrivals(out, r, config.forge_list_mtba, horizon,
             ByzantineKind::forge_shared_list, static_cast<std::uint32_t>(h));
  }
  const Rng replay_rng = rng.split(splits::kByzReplayHello);
  for (std::size_t h = 0; h < honeypots; ++h) {
    Rng r = replay_rng.split(h);
    arrivals(out, r, config.replay_hello_mtba, horizon,
             ByzantineKind::replay_hello, static_cast<std::uint32_t>(h));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const ByzantineEvent& a, const ByzantineEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

ByzantineInjector::ByzantineInjector(net::Network& network, ByzantinePlan plan,
                                     ByzantineConfig config, Bindings bindings,
                                     Rng rng)
    : net_(network),
      plan_(std::move(plan)),
      config_(config),
      bind_(std::move(bindings)),
      rng_(rng) {
  if (!plan_.empty() && bind_.honeypot_count > 0 && !bind_.honeypot_node) {
    throw std::invalid_argument(
        "fault::ByzantineInjector: honeypot_node binding required");
  }
}

void ByzantineInjector::arm() {
  if (plan_.empty()) return;
  // Liar nodes are firewalled (LowID) like the abuse pools, created in
  // fixed behavior order so the IP layout is a pure function of the legit
  // topology plus liars_per_class.
  const std::size_t per_class =
      std::max<std::size_t>(1, config_.liars_per_class);
  for (auto& pool : pools_) {
    pool.reserve(per_class);
    for (std::size_t i = 0; i < per_class; ++i) {
      pool.push_back(net_.add_node(false));
    }
  }
  auto& simulation = net_.simulation();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const Time at = std::max(plan_.events()[i].at, simulation.now());
    simulation.schedule_at(at, [this, i] { run_event(i); });
  }
}

void ByzantineInjector::run_event(std::size_t index) {
  const ByzantineEvent& event = plan_.events()[index];
  const auto subject = static_cast<std::size_t>(event.subject);
  switch (event.kind) {
    case ByzantineKind::offer_drop_begin: {
      if (bind_.drop_offers) bind_.drop_offers(subject, true);
      ++stats_.offer_drop_episodes;
      break;
    }
    case ByzantineKind::offer_drop_end: {
      if (bind_.drop_offers) bind_.drop_offers(subject, false);
      break;
    }
    case ByzantineKind::offer_truncate_begin: {
      if (bind_.truncate_offers) {
        bind_.truncate_offers(subject, true, event.magnitude);
      }
      ++stats_.offer_truncate_episodes;
      break;
    }
    case ByzantineKind::offer_truncate_end: {
      if (bind_.truncate_offers) bind_.truncate_offers(subject, false, 1.0);
      break;
    }
    case ByzantineKind::stale_index_begin: {
      if (bind_.stale_index) bind_.stale_index(subject, true);
      ++stats_.stale_index_episodes;
      break;
    }
    case ByzantineKind::stale_index_end: {
      if (bind_.stale_index) bind_.stale_index(subject, false);
      break;
    }
    case ByzantineKind::fabricate_sources_begin: {
      if (bind_.fabricate_sources) {
        // Per-window forged-identity stream, derived by event index: the
        // seed cannot change when another behavior's schedule is tuned.
        Rng seed_rng = rng_.split(index).split(0);
        bind_.fabricate_sources(subject, true, config_.fabricate_count,
                                seed_rng());
      }
      ++stats_.fabricate_episodes;
      break;
    }
    case ByzantineKind::fabricate_sources_end: {
      if (bind_.fabricate_sources) {
        bind_.fabricate_sources(subject, false, 0, 0);
      }
      break;
    }
    case ByzantineKind::corrupt_search_begin: {
      if (bind_.corrupt_search) {
        Rng seed_rng = rng_.split(index).split(1);
        bind_.corrupt_search(subject, true, seed_rng());
      }
      ++stats_.corrupt_search_episodes;
      break;
    }
    case ByzantineKind::corrupt_search_end: {
      if (bind_.corrupt_search) bind_.corrupt_search(subject, false, 0);
      break;
    }
    case ByzantineKind::forge_shared_list: {
      forge_episode(index, event.subject);
      break;
    }
    case ByzantineKind::replay_hello: {
      replay_episode(index, event.subject);
      break;
    }
  }
}

void ByzantineInjector::forge_episode(std::size_t index,
                                      std::uint32_t subject) {
  const auto& pool = pools_[0];
  const net::NodeId liar = pool[subject % pool.size()];
  const net::NodeId victim = bind_.honeypot_node(subject);
  net_.connect(liar, victim, [this, index, subject](net::EndpointPtr ep) {
    if (!ep) {
      ++stats_.connects_refused;
      return;
    }
    ++stats_.connections_opened;
    proto::Hello hello;
    // Plausible, episode-distinct identity; the low word marks liar records
    // for the tests only (defenses never inspect it).
    hello.user = UserId::from_words(
        kByzantineUserWord, (1ull << 48) | static_cast<std::uint64_t>(index));
    hello.port = 4662;
    hello.tags.push_back(
        proto::Tag::string_tag(proto::kTagName, liar_name(subject)));
    hello.tags.push_back(proto::Tag::u32_tag(proto::kTagVersion, 0x3C));
    ep->send(proto::encode(hello));
    ++stats_.messages_sent;
    // Volunteer the forged list shortly after the handshake — claiming the
    // honeypot's own advertised hashes back at it.
    std::vector<proto::PublishedFile> files =
        bind_.advertised_files ? bind_.advertised_files(subject)
                               : std::vector<proto::PublishedFile>{};
    if (files.size() > config_.forge_list_files) {
      files.resize(config_.forge_list_files);
    }
    net_.simulation().schedule_in(
        kForgeListDelay, [this, ep, files = std::move(files)]() mutable {
          if (!ep->open()) return;
          ep->send(proto::encode(proto::AskSharedFilesAnswer{std::move(files)}));
          ++stats_.messages_sent;
          ++stats_.forged_lists_sent;
          net_.simulation().schedule_in(kLiarLinger, [ep] { ep->close(); });
        });
  });
}

void ByzantineInjector::replay_episode(std::size_t index,
                                       std::uint32_t subject) {
  const auto& pool = pools_[1];
  const net::NodeId liar = pool[subject % pool.size()];
  const net::NodeId victim = bind_.honeypot_node(subject);
  net_.connect(liar, victim, [this, index](net::EndpointPtr ep) {
    if (!ep) {
      ++stats_.connects_refused;
      return;
    }
    ++stats_.connections_opened;
    replay_step(std::move(ep), static_cast<std::uint64_t>(index), 0);
  });
}

void ByzantineInjector::replay_step(net::EndpointPtr ep, std::uint64_t episode,
                                    std::size_t sent) {
  if (sent >= config_.replay_hello_count || !ep->open()) {
    ep->close();
    return;
  }
  proto::Hello hello;
  // One connection, a fresh user hash per HELLO: the replayer's whole point.
  // Records truncate the hash to its low word, so the rotation lives in the
  // low word's top 4 bits — the honeypot must see the hash *change*.
  hello.user = UserId::from_words(
      kByzantineUserWord | (static_cast<std::uint64_t>(sent & 0xF) << 60),
      (2ull << 48) | (episode << 8) | static_cast<std::uint64_t>(sent));
  hello.port = 4662;
  hello.tags.push_back(proto::Tag::string_tag(
      proto::kTagName, liar_name(static_cast<std::uint32_t>(episode))));
  hello.tags.push_back(proto::Tag::u32_tag(proto::kTagVersion, 0x3C));
  ep->send(proto::encode(hello));
  ++stats_.messages_sent;
  ++stats_.replayed_hellos_sent;
  net_.simulation().schedule_in(
      kReplaySpacing, [this, ep = std::move(ep), episode, sent]() mutable {
        replay_step(std::move(ep), episode, sent + 1);
      });
}

}  // namespace edhp::fault
