#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace edhp::fault {
namespace {

/// Minimum width of any down window: a zero-length outage would make the
/// down and up events tie and the observable effect depend on scheduling
/// order instead of the plan.
constexpr Duration kMinWindow = 1.0;

/// Draw alternating fail/recover windows of one renewal process and append
/// them to `out`. `down` and `up` may be any FaultKind pair.
void renewal_windows(std::vector<FaultEvent>& out, Rng& rng, Duration mtbf,
                     Duration down_mean, Duration horizon, FaultKind down,
                     FaultKind up, std::uint32_t subject, double magnitude) {
  if (mtbf <= 0) return;
  Time t = 0;
  while (true) {
    t += rng.exponential(mtbf);
    if (t >= horizon) return;
    out.push_back({t, down, subject, magnitude});
    const Duration window = std::max(kMinWindow, rng.exponential(down_mean));
    if (t + window < horizon) {
      out.push_back({t + window, up, subject, magnitude});
    }
    t += window;
  }
}

}  // namespace

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::host_crash: return "host_crash";
    case FaultKind::host_reboot: return "host_reboot";
    case FaultKind::uplink_down: return "uplink_down";
    case FaultKind::uplink_up: return "uplink_up";
    case FaultKind::server_down: return "server_down";
    case FaultKind::server_up: return "server_up";
    case FaultKind::latency_spike_begin: return "latency_spike_begin";
    case FaultKind::latency_spike_end: return "latency_spike_end";
    case FaultKind::partition_begin: return "partition_begin";
    case FaultKind::partition_heal: return "partition_heal";
    case FaultKind::manager_crash: return "manager_crash";
    case FaultKind::manager_recover: return "manager_recover";
    case FaultKind::disk_full_begin: return "disk_full_begin";
    case FaultKind::disk_full_end: return "disk_full_end";
    case FaultKind::disk_slow_begin: return "disk_slow_begin";
    case FaultKind::disk_slow_end: return "disk_slow_end";
    case FaultKind::mem_pressure_begin: return "mem_pressure_begin";
    case FaultKind::mem_pressure_end: return "mem_pressure_end";
    case FaultKind::clock_drift: return "clock_drift";
    case FaultKind::clock_step: return "clock_step";
    case FaultKind::clock_freeze_begin: return "clock_freeze_begin";
    case FaultKind::clock_freeze_end: return "clock_freeze_end";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::generate(const ChaosConfig& config, std::size_t hosts,
                              std::size_t servers, Duration horizon, Rng rng) {
  FaultPlan plan;
  if (!config.enabled || horizon <= 0) return plan;
  auto& out = plan.events_;

  // Each (category, subject) pair draws from its own split stream (registry:
  // fault/rng_splits.hpp), so e.g. adding uplink churn cannot shift the
  // host-crash schedule.
  const Rng host_rng = rng.split(splits::kFaultHost);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = host_rng.split(h);
    renewal_windows(out, r, config.host_mtbf, config.host_reboot_mean, horizon,
                    FaultKind::host_crash, FaultKind::host_reboot,
                    static_cast<std::uint32_t>(h), 1.0);
  }
  const Rng uplink_rng = rng.split(splits::kFaultUplink);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = uplink_rng.split(h);
    renewal_windows(out, r, config.uplink_mtbf, config.uplink_outage_mean,
                    horizon, FaultKind::uplink_down, FaultKind::uplink_up,
                    static_cast<std::uint32_t>(h), 1.0);
  }
  const Rng server_rng = rng.split(splits::kFaultServer);
  for (std::size_t s = 0; s < servers; ++s) {
    Rng r = server_rng.split(s);
    renewal_windows(out, r, config.server_mtbf, config.server_restart_mean,
                    horizon, FaultKind::server_down, FaultKind::server_up,
                    static_cast<std::uint32_t>(s), 1.0);
  }
  {
    Rng r = rng.split(splits::kFaultLatency);
    renewal_windows(out, r, config.latency_spike_mtbf,
                    config.latency_spike_mean, horizon,
                    FaultKind::latency_spike_begin,
                    FaultKind::latency_spike_end, 0,
                    config.latency_spike_factor);
  }
  if (config.partition_mtbf > 0 && hosts > 0) {
    // Partition episodes isolate a fresh random subset of hosts each time;
    // begin/heal events are emitted per host so the Injector needs no
    // episode memory.
    Rng r = rng.split(splits::kFaultPartition);
    Time t = 0;
    while (true) {
      t += r.exponential(config.partition_mtbf);
      if (t >= horizon) break;
      const Duration window = std::max(kMinWindow, r.exponential(config.partition_mean));
      const auto k = std::clamp<std::size_t>(
          static_cast<std::size_t>(
              std::llround(config.partition_fraction *
                           static_cast<double>(hosts))),
          1, hosts);
      for (const auto h : r.sample_indices(hosts, k)) {
        out.push_back({t, FaultKind::partition_begin,
                       static_cast<std::uint32_t>(h), 1.0});
        if (t + window < horizon) {
          out.push_back({t + window, FaultKind::partition_heal,
                         static_cast<std::uint32_t>(h), 1.0});
        }
      }
      t += window;
    }
  }

  {
    // The control plane is a single subject. Recover events are generated
    // even when recovery is disabled at scenario level (the binding is
    // simply left unset), so toggling `manager_recovery` cannot perturb
    // this — or, via stream splitting, any other — fault schedule.
    Rng r = rng.split(splits::kFaultManager);
    renewal_windows(out, r, config.manager_mtbf, config.manager_outage_mean,
                    horizon, FaultKind::manager_crash,
                    FaultKind::manager_recover, 0, 1.0);
  }

  // Resource-exhaustion classes on fresh splits (7/8/9): enabling any of
  // them leaves every schedule above bit-identical.
  const Rng disk_full_rng = rng.split(splits::kFaultDiskFull);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = disk_full_rng.split(h);
    renewal_windows(out, r, config.disk_full_mtbf, config.disk_full_mean,
                    horizon, FaultKind::disk_full_begin,
                    FaultKind::disk_full_end, static_cast<std::uint32_t>(h),
                    config.disk_full_fraction);
  }
  const Rng disk_slow_rng = rng.split(splits::kFaultDiskSlow);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = disk_slow_rng.split(h);
    renewal_windows(out, r, config.disk_slow_mtbf, config.disk_slow_mean,
                    horizon, FaultKind::disk_slow_begin,
                    FaultKind::disk_slow_end, static_cast<std::uint32_t>(h),
                    config.disk_slow_factor);
  }
  const Rng mem_rng = rng.split(splits::kFaultMemPressure);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = mem_rng.split(h);
    renewal_windows(out, r, config.mem_pressure_mtbf, config.mem_pressure_mean,
                    horizon, FaultKind::mem_pressure_begin,
                    FaultKind::mem_pressure_end, static_cast<std::uint32_t>(h),
                    config.mem_pressure_fraction);
  }

  // Clock-fault classes on fresh splits (10/11/12): enabling virtual time
  // leaves every schedule above bit-identical, and the events themselves
  // only ever touch ClockModels — record content other than timestamps is
  // invariant under them.
  const Rng drift_rng = rng.split(splits::kFaultClockDrift);
  if (config.clock_drift_mtbf > 0) {
    for (std::size_t h = 0; h < hosts; ++h) {
      Rng r = drift_rng.split(h);
      // An initial rate at t=0 models the oscillator's inherent skew;
      // re-draws at MTBF cadence model temperature/load episodes.
      Time t = 0;
      out.push_back({t, FaultKind::clock_drift, static_cast<std::uint32_t>(h),
                     r.uniform(-config.clock_drift_ppm,
                               config.clock_drift_ppm)});
      while (true) {
        t += r.exponential(config.clock_drift_mtbf);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::clock_drift,
                       static_cast<std::uint32_t>(h),
                       r.uniform(-config.clock_drift_ppm,
                                 config.clock_drift_ppm)});
      }
    }
  }
  const Rng step_rng = rng.split(splits::kFaultClockStep);
  if (config.clock_step_mtbf > 0) {
    for (std::size_t h = 0; h < hosts; ++h) {
      Rng r = step_rng.split(h);
      Time t = 0;
      while (true) {
        t += r.exponential(config.clock_step_mtbf);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::clock_step,
                       static_cast<std::uint32_t>(h),
                       r.uniform(-config.clock_step_max,
                                 config.clock_step_max)});
      }
    }
  }
  const Rng freeze_rng = rng.split(splits::kFaultClockFreeze);
  for (std::size_t h = 0; h < hosts; ++h) {
    Rng r = freeze_rng.split(h);
    renewal_windows(out, r, config.clock_freeze_mtbf, config.clock_freeze_mean,
                    horizon, FaultKind::clock_freeze_begin,
                    FaultKind::clock_freeze_end, static_cast<std::uint32_t>(h),
                    1.0);
  }

  // Stable: simultaneous events keep category order (hosts before uplinks
  // before servers...), which the Injector preserves when scheduling.
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

Injector::Injector(net::Network& network, FaultPlan plan, Bindings bindings)
    : net_(network), plan_(std::move(plan)), bind_(std::move(bindings)) {
  if (!plan_.empty() && !bind_.host_node) {
    throw std::invalid_argument("fault::Injector: host_node binding required");
  }
}

void Injector::arm() {
  auto& simulation = net_.simulation();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const Time at = std::max(plan_.events()[i].at, simulation.now());
    simulation.schedule_at(at, [this, i] { apply(plan_.events()[i]); });
  }
}

void Injector::apply(const FaultEvent& event) {
  const auto subject = static_cast<std::size_t>(event.subject);
  switch (event.kind) {
    case FaultKind::host_crash: {
      const auto node = bind_.host_node(subject);
      net_.set_node_up(node, false);
      stats_.connections_aborted += net_.abort_connections(node);
      if (bind_.crash_host) bind_.crash_host(subject);
      ++stats_.host_crashes;
      break;
    }
    case FaultKind::host_reboot: {
      net_.set_node_up(bind_.host_node(subject), true);
      ++stats_.host_reboots;
      break;
    }
    case FaultKind::uplink_down: {
      const auto node = bind_.host_node(subject);
      net_.set_node_up(node, false);
      stats_.connections_aborted += net_.abort_connections(node);
      ++stats_.uplink_outages;
      break;
    }
    case FaultKind::uplink_up: {
      net_.set_node_up(bind_.host_node(subject), true);
      break;
    }
    case FaultKind::server_down: {
      if (bind_.stop_server) bind_.stop_server(subject);
      ++stats_.server_restarts;
      break;
    }
    case FaultKind::server_up: {
      if (bind_.start_server) bind_.start_server(subject);
      break;
    }
    case FaultKind::latency_spike_begin: {
      for (std::size_t h = 0; h < bind_.host_count; ++h) {
        net_.set_latency_factor(bind_.host_node(h), event.magnitude);
      }
      ++stats_.latency_spikes;
      break;
    }
    case FaultKind::latency_spike_end: {
      for (std::size_t h = 0; h < bind_.host_count; ++h) {
        net_.set_latency_factor(bind_.host_node(h), 1.0);
      }
      break;
    }
    case FaultKind::partition_begin: {
      net_.set_partition(bind_.host_node(subject), 1);
      stats_.connections_aborted += net_.abort_cross_partition();
      ++stats_.partition_episodes;
      break;
    }
    case FaultKind::partition_heal: {
      net_.set_partition(bind_.host_node(subject), 0);
      break;
    }
    case FaultKind::manager_crash: {
      if (bind_.crash_manager) bind_.crash_manager();
      ++stats_.manager_crashes;
      break;
    }
    case FaultKind::manager_recover: {
      if (bind_.recover_manager) {
        bind_.recover_manager();
        ++stats_.manager_recoveries;
      }
      break;
    }
    case FaultKind::disk_full_begin: {
      if (bind_.disk_full) bind_.disk_full(subject, true, event.magnitude);
      ++stats_.disk_full_episodes;
      break;
    }
    case FaultKind::disk_full_end: {
      if (bind_.disk_full) bind_.disk_full(subject, false, event.magnitude);
      break;
    }
    case FaultKind::disk_slow_begin: {
      if (bind_.disk_slow) bind_.disk_slow(subject, true, event.magnitude);
      ++stats_.disk_slow_episodes;
      break;
    }
    case FaultKind::disk_slow_end: {
      if (bind_.disk_slow) bind_.disk_slow(subject, false, event.magnitude);
      break;
    }
    case FaultKind::mem_pressure_begin: {
      if (bind_.mem_pressure) bind_.mem_pressure(subject, true, event.magnitude);
      ++stats_.mem_pressure_episodes;
      break;
    }
    case FaultKind::mem_pressure_end: {
      if (bind_.mem_pressure) bind_.mem_pressure(subject, false, event.magnitude);
      break;
    }
    case FaultKind::clock_drift: {
      net_.clock(bind_.host_node(subject))
          .set_drift(net_.simulation().now(), event.magnitude * 1e-6);
      ++stats_.clock_drift_changes;
      break;
    }
    case FaultKind::clock_step: {
      net_.clock(bind_.host_node(subject))
          .step(net_.simulation().now(), event.magnitude);
      ++stats_.clock_steps;
      break;
    }
    case FaultKind::clock_freeze_begin: {
      net_.clock(bind_.host_node(subject)).freeze(net_.simulation().now());
      ++stats_.clock_freezes;
      break;
    }
    case FaultKind::clock_freeze_end: {
      net_.clock(bind_.host_node(subject)).thaw(net_.simulation().now());
      break;
    }
  }
}

std::unique_ptr<sim::PeriodicTimer> Injector::legacy_crash_grid(
    sim::Simulation& simulation, Duration mtbf,
    std::function<std::size_t()> fleet_size,
    std::function<void(std::size_t)> crash, Rng rng) {
  // Reproduces the historical inline loop draw-for-draw: one Bernoulli per
  // fleet member per hour, in fleet order, from the caller's stream.
  return std::make_unique<sim::PeriodicTimer>(
      simulation, hours(1),
      [mtbf, fleet_size = std::move(fleet_size), crash = std::move(crash),
       rng]() mutable {
        for (std::size_t h = 0; h < fleet_size(); ++h) {
          if (rng.chance(hours(1) / mtbf)) {
            crash(h);
          }
        }
      });
}

}  // namespace edhp::fault
