#include "analysis/thread_pool.hpp"

namespace edhp::analysis {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One task per worker pulling indices from a shared atomic counter.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(pool->size(), n);
  for (std::size_t t = 0; t < tasks; ++t) {
    pool->submit([counter, n, &body] {
      while (true) {
        const std::size_t i = counter->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        body(i);
      }
    });
  }
  pool->wait_idle();
}

}  // namespace edhp::analysis
