#include "analysis/log_stats.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace edhp::analysis {
namespace {

void require_stage2(const logbook::LogFile& log) {
  if (log.header.peer_kind != logbook::PeerIdKind::stage2_index) {
    throw std::invalid_argument(
        "analysis requires stage-2 anonymised logs (run renumber_peers)");
  }
}

bool match(const logbook::LogRecord& r, std::optional<logbook::QueryType> type,
           const HoneypotFilter& filter) {
  if (type && r.type != *type) return false;
  if (filter && !filter(r.honeypot)) return false;
  return true;
}

std::uint64_t peer_universe(const logbook::LogFile& log) {
  std::uint64_t max_peer = 0;
  for (const auto& r : log.records) {
    max_peer = std::max(max_peer, r.peer);
  }
  return log.records.empty() ? 0 : max_peer + 1;
}

}  // namespace

DistinctSeries distinct_peers_by_day(const logbook::LogFile& log,
                                     std::optional<logbook::QueryType> type,
                                     std::size_t days,
                                     const HoneypotFilter& filter) {
  require_stage2(log);
  DistinctSeries out;
  out.cumulative.assign(days, 0);
  out.fresh.assign(days, 0);

  DynBitset seen(peer_universe(log));
  std::vector<std::uint64_t> fresh_per_day(days, 0);
  for (const auto& r : log.records) {
    if (!match(r, type, filter)) continue;
    const auto day = day_index(r.timestamp);
    if (day >= days) continue;
    if (!seen.test(r.peer)) {
      seen.set(r.peer);
      ++fresh_per_day[day];
      ++out.total;
    }
  }
  std::uint64_t acc = 0;
  for (std::size_t d = 0; d < days; ++d) {
    acc += fresh_per_day[d];
    out.cumulative[d] = acc;
    out.fresh[d] = fresh_per_day[d];
  }
  return out;
}

std::vector<std::uint64_t> cumulative_messages_by_day(const logbook::LogFile& log,
                                                      logbook::QueryType type,
                                                      std::size_t days,
                                                      const HoneypotFilter& filter) {
  require_stage2(log);
  std::vector<std::uint64_t> out(days, 0);
  for (const auto& r : log.records) {
    if (!match(r, type, filter)) continue;
    const auto day = day_index(r.timestamp);
    if (day < days) ++out[day];
  }
  std::uint64_t acc = 0;
  for (auto& v : out) {
    acc += v;
    v = acc;
  }
  return out;
}

std::vector<std::uint64_t> messages_by_hour(const logbook::LogFile& log,
                                            logbook::QueryType type,
                                            std::size_t hours,
                                            const HoneypotFilter& filter) {
  require_stage2(log);
  std::vector<std::uint64_t> out(hours, 0);
  for (const auto& r : log.records) {
    if (!match(r, type, filter)) continue;
    const auto hour = hour_index(r.timestamp);
    if (hour < hours) ++out[hour];
  }
  return out;
}

std::optional<std::uint64_t> most_active_peer(const logbook::LogFile& log) {
  require_stage2(log);
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (const auto& r : log.records) {
    ++counts[r.peer];
  }
  std::optional<std::uint64_t> best;
  std::uint64_t best_count = 0;
  for (const auto& [peer, count] : counts) {
    if (count > best_count || (count == best_count && (!best || peer < *best))) {
      best = peer;
      best_count = count;
    }
  }
  return best;
}

std::vector<std::uint64_t> peer_messages_by_day(const logbook::LogFile& log,
                                                std::uint64_t peer,
                                                logbook::QueryType type,
                                                std::size_t days,
                                                const HoneypotFilter& filter) {
  require_stage2(log);
  std::vector<std::uint64_t> out(days, 0);
  for (const auto& r : log.records) {
    if (r.peer != peer || !match(r, type, filter)) continue;
    const auto day = day_index(r.timestamp);
    if (day < days) ++out[day];
  }
  std::uint64_t acc = 0;
  for (auto& v : out) {
    acc += v;
    v = acc;
  }
  return out;
}

std::vector<DynBitset> peer_sets_by_honeypot(const logbook::LogFile& log,
                                             std::size_t num_honeypots) {
  require_stage2(log);
  const auto universe = peer_universe(log);
  std::vector<DynBitset> sets(num_honeypots);
  for (auto& s : sets) {
    s.resize(universe);
  }
  for (const auto& r : log.records) {
    if (r.honeypot < num_honeypots) {
      sets[r.honeypot].set(r.peer);
    }
  }
  return sets;
}

std::vector<DynBitset> peer_sets_by_file(const logbook::LogFile& log,
                                         std::span<const FileId> files) {
  require_stage2(log);
  const auto universe = peer_universe(log);
  std::unordered_map<FileId, std::size_t> index;
  index.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    index.emplace(files[i], i);
  }
  std::vector<DynBitset> sets(files.size());
  for (auto& s : sets) {
    s.resize(universe);
  }
  for (const auto& r : log.records) {
    if (!r.has_file()) continue;
    auto it = index.find(r.file);
    if (it != index.end()) {
      sets[it->second].set(r.peer);
    }
  }
  return sets;
}

std::vector<FilePopularity> file_popularity(const logbook::LogFile& log) {
  require_stage2(log);
  std::unordered_map<FileId, std::unordered_set<std::uint64_t>> peers_of;
  for (const auto& r : log.records) {
    if (!r.has_file()) continue;
    peers_of[r.file].insert(r.peer);
  }
  std::vector<FilePopularity> out;
  out.reserve(peers_of.size());
  for (const auto& [file, peers] : peers_of) {
    out.push_back(FilePopularity{file, peers.size()});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.peers != b.peers) return a.peers > b.peers;
    return a.file < b.file;
  });
  return out;
}

std::uint64_t distinct_peers(const logbook::LogFile& log) {
  require_stage2(log);
  DynBitset seen(peer_universe(log));
  std::uint64_t total = 0;
  for (const auto& r : log.records) {
    if (!seen.test(r.peer)) {
      seen.set(r.peer);
      ++total;
    }
  }
  return total;
}

}  // namespace edhp::analysis
