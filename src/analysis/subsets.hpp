#pragma once
// Subset-sampling estimators for Figs 10-12: "how many distinct peers would
// n honeypots (or n advertised files) have observed?"
//
// For each sample, a random permutation of the entity sets is walked and
// the union size recorded at every prefix length — a prefix of length n of
// a uniform random permutation is a uniform random n-subset, so one pass
// yields every n at once. The paper repeats with 100 samples and plots the
// average, minimum and maximum; so do we. Samples are independent and run
// on a thread pool with per-sample RNG streams, keeping results identical
// for any thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/bitset.hpp"
#include "analysis/thread_pool.hpp"
#include "common/rng.hpp"

namespace edhp::analysis {

/// Result curves, indexed by n-1 for n = 1..N entities.
struct SubsetCurve {
  std::vector<double> avg;
  std::vector<std::uint64_t> min;
  std::vector<std::uint64_t> max;

  [[nodiscard]] std::size_t size() const noexcept { return avg.size(); }
};

/// Distinct-union curve over `sets` with `samples` random orderings.
/// Deterministic in (sets, samples, rng seed) regardless of `pool`.
[[nodiscard]] SubsetCurve subset_union_curve(std::span<const DynBitset> sets,
                                             std::size_t samples, Rng rng,
                                             ThreadPool* pool = nullptr);

/// Reference implementation used by tests and the ablation benchmark:
/// independently samples an n-subset per (n, sample) pair with hash-set
/// unions. O(samples * N^2 * |set|); only for small inputs.
[[nodiscard]] SubsetCurve subset_union_curve_naive(
    std::span<const std::vector<std::uint64_t>> sets, std::size_t samples,
    Rng rng);

}  // namespace edhp::analysis
