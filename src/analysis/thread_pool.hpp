#pragma once
// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used to parallelise embarrassingly parallel analysis work (the 100-sample
// subset estimators) and scenario replication. Work items must be
// independent; parallel_for hands out indices via an atomic counter so the
// load balances without a scheduler.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace edhp::analysis {

class ThreadPool {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (they run detached from callers).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, n), spread over the pool (or inline when pool
/// is null). Blocks until done.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace edhp::analysis
