#include "analysis/subsets.hpp"

#include <numeric>
#include <unordered_set>

namespace edhp::analysis {

SubsetCurve subset_union_curve(std::span<const DynBitset> sets,
                               std::size_t samples, Rng rng, ThreadPool* pool) {
  const std::size_t n = sets.size();
  SubsetCurve curve;
  curve.avg.assign(n, 0.0);
  curve.min.assign(n, std::numeric_limits<std::uint64_t>::max());
  curve.max.assign(n, 0);
  if (n == 0 || samples == 0) {
    return curve;
  }

  const std::size_t universe = sets.front().size();

  // Per-sample prefix-union counts, written into a dense matrix so worker
  // threads never contend.
  std::vector<std::uint64_t> counts(samples * n, 0);
  parallel_for(pool, samples, [&](std::size_t s) {
    Rng local = rng.split(s + 1);  // stable per-sample stream
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    local.shuffle(order);
    DynBitset acc(universe);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += acc.merge_count_new(sets[order[i]]);
      counts[s * n + i] = total;
    }
  });

  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = counts[s * n + i];
      curve.avg[i] += static_cast<double>(v);
      curve.min[i] = std::min(curve.min[i], v);
      curve.max[i] = std::max(curve.max[i], v);
    }
  }
  for (auto& a : curve.avg) {
    a /= static_cast<double>(samples);
  }
  return curve;
}

SubsetCurve subset_union_curve_naive(
    std::span<const std::vector<std::uint64_t>> sets, std::size_t samples,
    Rng rng) {
  const std::size_t n = sets.size();
  SubsetCurve curve;
  curve.avg.assign(n, 0.0);
  curve.min.assign(n, std::numeric_limits<std::uint64_t>::max());
  curve.max.assign(n, 0);

  for (std::size_t size = 1; size <= n; ++size) {
    for (std::size_t s = 0; s < samples; ++s) {
      const auto chosen = rng.sample_indices(n, size);
      std::unordered_set<std::uint64_t> uni;
      for (auto idx : chosen) {
        uni.insert(sets[idx].begin(), sets[idx].end());
      }
      const std::uint64_t v = uni.size();
      curve.avg[size - 1] += static_cast<double>(v);
      curve.min[size - 1] = std::min(curve.min[size - 1], v);
      curve.max[size - 1] = std::max(curve.max[size - 1], v);
    }
    curve.avg[size - 1] /= static_cast<double>(samples);
  }
  return curve;
}

}  // namespace edhp::analysis
