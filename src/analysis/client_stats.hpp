#pragma once
// Client-population statistics from the metadata the honeypots log with
// every query: client-name strings, protocol versions, and HighID/LowID
// status — the "name, userID, version of client and ID status" fields of
// Section III.B.

#include <cstdint>
#include <string>
#include <vector>

#include "logbook/record.hpp"

namespace edhp::analysis {

/// One client software kind and how many distinct peers presented it.
struct ClientShare {
  std::string name;
  std::uint64_t peers = 0;
  double share = 0;  ///< fraction of attributed peers
};

/// Distinct peers per client-name string, descending. Peers whose HELLO
/// carried no name tag fall under "" (listed last if present).
[[nodiscard]] std::vector<ClientShare> client_mix(const logbook::LogFile& log);

/// Fraction of distinct peers that connected with a HighID; the LowID rest
/// are the firewalled population. Returns {high, low, fraction_high}.
struct IdShare {
  std::uint64_t high = 0;
  std::uint64_t low = 0;
  [[nodiscard]] double fraction_high() const {
    const auto total = high + low;
    return total > 0 ? static_cast<double>(high) / static_cast<double>(total)
                     : 0.0;
  }
};
[[nodiscard]] IdShare high_id_share(const logbook::LogFile& log);

}  // namespace edhp::analysis
