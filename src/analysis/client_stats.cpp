#include "analysis/client_stats.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace edhp::analysis {
namespace {

void require_stage2(const logbook::LogFile& log) {
  if (log.header.peer_kind != logbook::PeerIdKind::stage2_index) {
    throw std::invalid_argument(
        "analysis requires stage-2 anonymised logs (run renumber_peers)");
  }
}

}  // namespace

std::vector<ClientShare> client_mix(const logbook::LogFile& log) {
  require_stage2(log);
  // A peer's client is whatever its records present; first record wins
  // (clients do not change identity mid-measurement).
  std::unordered_map<std::uint64_t, std::uint16_t> client_of;
  for (const auto& r : log.records) {
    client_of.try_emplace(r.peer, r.name_ref);
  }
  std::unordered_map<std::uint16_t, std::uint64_t> counts;
  for (const auto& [peer, ref] : client_of) {
    ++counts[ref];
  }
  std::vector<ClientShare> out;
  out.reserve(counts.size());
  const double total = static_cast<double>(client_of.size());
  for (const auto& [ref, peers] : counts) {
    ClientShare share;
    share.name = ref < log.names.size() ? log.names[ref] : "";
    share.peers = peers;
    share.share = total > 0 ? static_cast<double>(peers) / total : 0;
    out.push_back(std::move(share));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if ((a.name.empty()) != (b.name.empty())) return b.name.empty();
    if (a.peers != b.peers) return a.peers > b.peers;
    return a.name < b.name;
  });
  return out;
}

IdShare high_id_share(const logbook::LogFile& log) {
  require_stage2(log);
  std::unordered_set<std::uint64_t> high, low;
  for (const auto& r : log.records) {
    (r.high_id() ? high : low).insert(r.peer);
  }
  // A peer can flip between sessions (LowID on a bad day); count it where
  // it appeared most recently deterministic: count as high if ever high.
  IdShare out;
  out.high = high.size();
  for (const auto peer : low) {
    if (!high.contains(peer)) ++out.low;
  }
  return out;
}

}  // namespace edhp::analysis
