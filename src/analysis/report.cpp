#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace edhp::analysis {
namespace {

std::string format_value(double v) {
  if (std::fabs(v - std::round(v)) < 1e-9 && std::fabs(v) < 1e15) {
    std::string s = with_commas(static_cast<std::uint64_t>(std::llround(std::fabs(v))));
    if (v < -0.5) {
      s = "-" + s;
    }
    return s;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<double> index_axis(std::size_t n, bool from_zero) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(from_zero ? i : i + 1);
  }
  return x;
}

std::vector<std::size_t> stride_rows(std::size_t n, std::size_t max_rows) {
  std::vector<std::size_t> rows;
  if (n == 0) return rows;
  if (max_rows < 2) max_rows = 2;
  if (n <= max_rows) {
    rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    return rows;
  }
  const double step = static_cast<double>(n - 1) / static_cast<double>(max_rows - 1);
  for (std::size_t i = 0; i < max_rows; ++i) {
    rows.push_back(static_cast<std::size_t>(
        std::llround(static_cast<double>(i) * step)));
  }
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

void print_table(std::ostream& out, std::string_view title,
                 std::string_view xlabel, std::span<const double> x,
                 std::span<const Series> series) {
  out << "== " << title << " ==\n";
  // Header.
  out << std::setw(12) << xlabel;
  for (const auto& s : series) {
    out << std::setw(11 + static_cast<int>(std::max<std::size_t>(s.name.size(), 8)) -
                     static_cast<int>(std::min<std::size_t>(s.name.size(), 8)))
        << s.name;
  }
  out << '\n';
  for (std::size_t row = 0; row < x.size(); ++row) {
    out << std::setw(12) << format_value(x[row]);
    for (const auto& s : series) {
      if (row < s.values.size()) {
        out << std::setw(11 + static_cast<int>(std::max<std::size_t>(s.name.size(), 8)) -
                         static_cast<int>(std::min<std::size_t>(s.name.size(), 8)))
            << format_value(s.values[row]);
      } else {
        out << std::setw(11) << "-";
      }
    }
    out << '\n';
  }
  out << '\n';
}

void print_kv(std::ostream& out, std::string_view title,
              std::span<const std::pair<std::string, std::string>> rows) {
  out << "== " << title << " ==\n";
  std::size_t width = 0;
  for (const auto& [k, v] : rows) {
    width = std::max(width, k.size());
  }
  for (const auto& [k, v] : rows) {
    out << "  " << std::left << std::setw(static_cast<int>(width) + 2) << k
        << std::right << v << '\n';
  }
  out << '\n';
}

void write_gnuplot(const std::string& path, std::span<const double> x,
                   std::span<const Series> series) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write gnuplot data: " + path);
  }
  out << "# x";
  for (const auto& s : series) {
    out << ' ' << s.name;
  }
  out << '\n';
  for (std::size_t row = 0; row < x.size(); ++row) {
    out << x[row];
    for (const auto& s : series) {
      out << ' ' << (row < s.values.size() ? s.values[row] : 0.0);
    }
    out << '\n';
  }
}

}  // namespace edhp::analysis
