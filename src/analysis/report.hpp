#pragma once
// Plain-text reporting helpers shared by the bench harnesses: aligned
// series tables (one row per x value) and key/value summaries, plus
// gnuplot-ready data files for external plotting.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace edhp::analysis {

/// One named data column.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Print a titled table: x column plus one column per series. Rows where
/// every series is missing (shorter than x) are skipped.
void print_table(std::ostream& out, std::string_view title,
                 std::string_view xlabel, std::span<const double> x,
                 std::span<const Series> series);

/// Evenly strided x values 1..n (or 0..n-1 when `from_zero`).
[[nodiscard]] std::vector<double> index_axis(std::size_t n, bool from_zero = false);

/// Key/value block, aligned.
void print_kv(std::ostream& out, std::string_view title,
              std::span<const std::pair<std::string, std::string>> rows);

/// "12,345" style human formatting.
[[nodiscard]] std::string with_commas(std::uint64_t v);

/// Write "x y1 y2 ..." rows for gnuplot.
void write_gnuplot(const std::string& path, std::span<const double> x,
                   std::span<const Series> series);

/// Downsample a series to at most `max_rows` evenly spaced rows (keeps the
/// last row). Used to keep printed tables readable for hourly data.
[[nodiscard]] std::vector<std::size_t> stride_rows(std::size_t n,
                                                   std::size_t max_rows);

}  // namespace edhp::analysis
