#pragma once
// Co-interest analysis — the paper's announced follow-up: "explore the
// relationships between peers inferred from the fact that they are
// interested in the same files, and conversely study relations between
// files from the fact that they are downloaded by the same peers."
//
// Works on merged stage-2 logs; peers are attributed to files through their
// START-UPLOAD / REQUEST-PART queries.

#include <span>
#include <vector>

#include "analysis/bitset.hpp"
#include "analysis/thread_pool.hpp"
#include "logbook/record.hpp"

namespace edhp::analysis {

/// One edge of the file-file projection: how many peers queried both.
struct FilePairOverlap {
  FileId a;
  FileId b;
  std::uint64_t shared_peers = 0;
  double jaccard = 0;  ///< shared / (|a| + |b| - shared)
};

/// The strongest file-file relations among `files` (ranked by shared peer
/// count, ties by Jaccard), up to `top_k` pairs. Pairwise bitset
/// intersection, parallelised over the first index.
[[nodiscard]] std::vector<FilePairOverlap> top_file_overlaps(
    const logbook::LogFile& log, std::span<const FileId> files,
    std::size_t top_k, ThreadPool* pool = nullptr);

/// Aggregate structure of peer interest.
struct CoInterestSummary {
  std::uint64_t attributed_peers = 0;   ///< peers with >= 1 file query
  std::uint64_t multi_file_peers = 0;   ///< peers querying >= 2 files
  double avg_files_per_peer = 0;        ///< among attributed peers
  std::uint64_t max_files_one_peer = 0;
};

[[nodiscard]] CoInterestSummary co_interest_summary(const logbook::LogFile& log);

}  // namespace edhp::analysis
