#include "analysis/co_interest.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "analysis/log_stats.hpp"

namespace edhp::analysis {

std::vector<FilePairOverlap> top_file_overlaps(const logbook::LogFile& log,
                                               std::span<const FileId> files,
                                               std::size_t top_k,
                                               ThreadPool* pool) {
  const auto sets = peer_sets_by_file(log, files);
  std::vector<std::uint64_t> sizes(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    sizes[i] = sets[i].count();
  }

  std::vector<FilePairOverlap> all;
  std::mutex mutex;
  parallel_for(pool, sets.size(), [&](std::size_t i) {
    std::vector<FilePairOverlap> local;
    for (std::size_t j = i + 1; j < sets.size(); ++j) {
      const auto shared = sets[i].intersect_count(sets[j]);
      if (shared == 0) continue;
      FilePairOverlap edge;
      edge.a = files[i];
      edge.b = files[j];
      edge.shared_peers = shared;
      const auto uni = sizes[i] + sizes[j] - shared;
      edge.jaccard = uni > 0 ? static_cast<double>(shared) /
                                   static_cast<double>(uni)
                             : 0.0;
      local.push_back(edge);
    }
    if (!local.empty()) {
      std::lock_guard lock(mutex);
      all.insert(all.end(), local.begin(), local.end());
    }
  });

  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    if (x.shared_peers != y.shared_peers) return x.shared_peers > y.shared_peers;
    if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  if (all.size() > top_k) {
    all.resize(top_k);
  }
  return all;
}

CoInterestSummary co_interest_summary(const logbook::LogFile& log) {
  // Count distinct files per peer.
  std::unordered_map<std::uint64_t, std::unordered_set<FileId>> files_of;
  for (const auto& r : log.records) {
    if (!r.has_file()) continue;
    files_of[r.peer].insert(r.file);
  }
  CoInterestSummary out;
  out.attributed_peers = files_of.size();
  std::uint64_t total_files = 0;
  for (const auto& [peer, files] : files_of) {
    total_files += files.size();
    if (files.size() >= 2) ++out.multi_file_peers;
    out.max_files_one_peer = std::max<std::uint64_t>(out.max_files_one_peer,
                                                     files.size());
  }
  if (out.attributed_peers > 0) {
    out.avg_files_per_peer = static_cast<double>(total_files) /
                             static_cast<double>(out.attributed_peers);
  }
  return out;
}

}  // namespace edhp::analysis
