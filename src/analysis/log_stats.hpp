#pragma once
// Statistics over merged, stage-2-anonymised honeypot logs: everything the
// paper's evaluation section plots.
//
// All functions take a LogFile whose peer field holds dense stage-2 indices
// (PeerIdKind::stage2_index); passing a stage-1 log throws, which doubles
// as a privacy guard: analyses only run on fully anonymised data.

#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/bitset.hpp"
#include "logbook/record.hpp"

namespace edhp::analysis {

/// Filter over record's honeypot id; empty means "all".
using HoneypotFilter = std::function<bool(std::uint16_t)>;

/// Cumulative distinct peers per day plus the per-day novelty (Figs 2/3/5/6).
struct DistinctSeries {
  std::vector<std::uint64_t> cumulative;  ///< index d: distinct after day d
  std::vector<std::uint64_t> fresh;       ///< index d: first-seen on day d
  std::uint64_t total = 0;
};

/// Distinct peers per day among records matching `type` (all types when
/// nullopt) and `filter`. `days` fixes the series length.
[[nodiscard]] DistinctSeries distinct_peers_by_day(
    const logbook::LogFile& log, std::optional<logbook::QueryType> type,
    std::size_t days, const HoneypotFilter& filter = {});

/// Cumulative message counts per day (Fig 7).
[[nodiscard]] std::vector<std::uint64_t> cumulative_messages_by_day(
    const logbook::LogFile& log, logbook::QueryType type, std::size_t days,
    const HoneypotFilter& filter = {});

/// Messages of `type` per hour (Fig 4).
[[nodiscard]] std::vector<std::uint64_t> messages_by_hour(
    const logbook::LogFile& log, logbook::QueryType type, std::size_t hours,
    const HoneypotFilter& filter = {});

/// Stage-2 index of the peer with the most records (Figs 8/9), or nullopt
/// for an empty log.
[[nodiscard]] std::optional<std::uint64_t> most_active_peer(
    const logbook::LogFile& log);

/// Cumulative messages of `type` from one peer per day (Figs 8/9).
[[nodiscard]] std::vector<std::uint64_t> peer_messages_by_day(
    const logbook::LogFile& log, std::uint64_t peer, logbook::QueryType type,
    std::size_t days, const HoneypotFilter& filter = {});

/// Per-honeypot distinct-peer bitsets over the dense peer universe (Fig 10).
[[nodiscard]] std::vector<DynBitset> peer_sets_by_honeypot(
    const logbook::LogFile& log, std::size_t num_honeypots);

/// Per-file distinct-peer bitsets for the given files (Figs 11/12); peers
/// are attributed to a file by START-UPLOAD/REQUEST-PART records.
[[nodiscard]] std::vector<DynBitset> peer_sets_by_file(
    const logbook::LogFile& log, std::span<const FileId> files);

/// Number of distinct peers querying each file, descending — used to pick
/// the "popular-files" subset (Fig 12) and the per-file extremes quoted in
/// the paper.
struct FilePopularity {
  FileId file;
  std::uint64_t peers = 0;
};
[[nodiscard]] std::vector<FilePopularity> file_popularity(
    const logbook::LogFile& log);

/// Total distinct peers in the log (= stage-2 universe size when the log is
/// the complete merged measurement).
[[nodiscard]] std::uint64_t distinct_peers(const logbook::LogFile& log);

}  // namespace edhp::analysis
