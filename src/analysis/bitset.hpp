#pragma once
// Dense dynamic bitset used by the subset-sampling estimators: peer sets at
// paper scale hold hundreds of thousands of members, and Figs 10-12 need
// thousands of unions over them, so sets are bit vectors over the dense
// stage-2 peer index (13 KB per 100k peers) and unions are word-wise ORs.

#include <cstdint>
#include <vector>

namespace edhp::analysis {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Population count.
  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t c = 0;
    for (auto w : words_) {
      c += static_cast<std::uint64_t>(__builtin_popcountll(w));
    }
    return c;
  }

  /// Merge `other` into *this, returning how many bits were newly set —
  /// the incremental-union primitive behind the subset curves.
  std::uint64_t merge_count_new(const DynBitset& other) {
    std::uint64_t added = 0;
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t fresh = other.words_[i] & ~words_[i];
      added += static_cast<std::uint64_t>(__builtin_popcountll(fresh));
      words_[i] |= other.words_[i];
    }
    return added;
  }

  /// |*this AND other| without modifying either side.
  [[nodiscard]] std::uint64_t intersect_count(const DynBitset& other) const {
    std::uint64_t c = 0;
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      c += static_cast<std::uint64_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return c;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  bool operator==(const DynBitset&) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace edhp::analysis
