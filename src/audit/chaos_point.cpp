#include "audit/chaos_point.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/clock.hpp"

namespace edhp::audit {
namespace {

using fault::AbuseConfig;
using fault::ChaosConfig;

/// Registry entry: public knob description + the setter projecting its
/// value onto the live configs (capture-free, so a plain function pointer).
struct KnobImpl {
  KnobInfo info;
  void (*set)(ChaosConfig&, AbuseConfig&, double);
};

constexpr double kH = 3600.0;  // one hour in seconds

#define EDHP_KNOB_SET(expr)                                         \
  +[](ChaosConfig& c, AbuseConfig& a, double v) {                   \
    (void)c;                                                        \
    (void)a;                                                        \
    (void)v;                                                        \
    expr;                                                           \
  }

const KnobImpl kKnobs[] = {
    // --- Silence faults (host / link / server / partition churn) ---------
    {{"host_mtbf", KnobGroup::chaos, 4 * kH, 192 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.host_mtbf = v)},
    {{"host_reboot_mean", KnobGroup::chaos, 60, 2 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.host_reboot_mean = v)},
    {{"uplink_mtbf", KnobGroup::chaos, 2 * kH, 96 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.uplink_mtbf = v)},
    {{"uplink_outage_mean", KnobGroup::chaos, 120, kH, true, false, 0.12},
     EDHP_KNOB_SET(c.uplink_outage_mean = v)},
    {{"server_mtbf", KnobGroup::chaos, 8 * kH, 192 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.server_mtbf = v)},
    {{"server_restart_mean", KnobGroup::chaos, 60, 600, false, false, 0.12},
     EDHP_KNOB_SET(c.server_restart_mean = v)},
    {{"latency_spike_mtbf", KnobGroup::chaos, 4 * kH, 96 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.latency_spike_mtbf = v)},
    {{"latency_spike_factor", KnobGroup::chaos, 2, 16, false, false, 0.12},
     EDHP_KNOB_SET(c.latency_spike_factor = v)},
    {{"partition_mtbf", KnobGroup::chaos, 8 * kH, 192 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.partition_mtbf = v)},
    {{"partition_fraction", KnobGroup::chaos, 0.1, 0.5, false, false, 0.12},
     EDHP_KNOB_SET(c.partition_fraction = v)},
    // --- Control-plane churn ---------------------------------------------
    {{"manager_mtbf", KnobGroup::chaos, 24 * kH, 192 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.manager_mtbf = v)},
    {{"manager_outage_mean", KnobGroup::chaos, 600, 2 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.manager_outage_mean = v)},
    {{"manager_no_recovery", KnobGroup::chaos, 1, 1, false, true, 0.06},
     EDHP_KNOB_SET(c.manager_recovery = (v == 0))},
    // --- Resource-exhaustion episodes ------------------------------------
    {{"disk_full_mtbf", KnobGroup::chaos, 4 * kH, 48 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.disk_full_mtbf = v)},
    {{"disk_full_fraction", KnobGroup::chaos, 0.05, 0.5, false, false, 0.12},
     EDHP_KNOB_SET(c.disk_full_fraction = v)},
    {{"disk_slow_mtbf", KnobGroup::chaos, 4 * kH, 48 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.disk_slow_mtbf = v)},
    {{"disk_slow_factor", KnobGroup::chaos, 2, 8, false, false, 0.12},
     EDHP_KNOB_SET(c.disk_slow_factor = v)},
    {{"mem_pressure_mtbf", KnobGroup::chaos, 4 * kH, 48 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.mem_pressure_mtbf = v)},
    {{"mem_pressure_fraction", KnobGroup::chaos, 0.2, 0.8, false, false, 0.12},
     EDHP_KNOB_SET(c.mem_pressure_fraction = v)},
    // --- Clock faults ------------------------------------------------------
    {{"clock_drift_mtbf", KnobGroup::chaos, 4 * kH, 96 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.clock_drift_mtbf = v)},
    {{"clock_drift_ppm", KnobGroup::chaos, 50, 500, false, false, 0.12},
     EDHP_KNOB_SET(c.clock_drift_ppm = v)},
    {{"clock_step_mtbf", KnobGroup::chaos, 4 * kH, 96 * kH, true, false, 0.12},
     EDHP_KNOB_SET(c.clock_step_mtbf = v)},
    {{"clock_step_max", KnobGroup::chaos, 5, 300, false, false, 0.12},
     EDHP_KNOB_SET(c.clock_step_max = v)},
    {{"clock_freeze_mtbf", KnobGroup::chaos, 8 * kH, 96 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.clock_freeze_mtbf = v)},
    {{"clock_freeze_mean", KnobGroup::chaos, 30, 600, true, false, 0.12},
     EDHP_KNOB_SET(c.clock_freeze_mean = v)},
    // --- Spool / recovery policy ------------------------------------------
    {{"spool_period", KnobGroup::chaos, 120, kH, true, false, 0.12},
     EDHP_KNOB_SET(c.spool_period = v)},
    {{"resend_credit", KnobGroup::chaos, 1, 8, false, true, 0.12},
     EDHP_KNOB_SET(c.resend_credit = static_cast<std::uint32_t>(v))},
    // --- Resource budgets --------------------------------------------------
    {{"disk_quota_bytes", KnobGroup::chaos, 65536, 4194304, true, true, 0.12},
     EDHP_KNOB_SET(c.disk_quota_bytes = static_cast<std::uint64_t>(v))},
    {{"mem_budget_records", KnobGroup::chaos, 512, 65536, true, true, 0.12},
     EDHP_KNOB_SET(c.mem_budget_records = static_cast<std::uint64_t>(v))},
    {{"session_ceiling", KnobGroup::chaos, 8, 128, true, true, 0.12},
     EDHP_KNOB_SET(c.session_ceiling = static_cast<std::uint32_t>(v))},
    {{"degrade_off", KnobGroup::chaos, 1, 1, false, true, 0.04},
     EDHP_KNOB_SET(c.degrade_policy = v == 0
                       ? budget::DegradePolicy::priority_shed
                       : budget::DegradePolicy::off)},
    // --- Link-quality model (no master switch: zero values are no-ops) ----
    {{"link_burst_enter", KnobGroup::plain, 0.001, 0.05, true, false, 0.12},
     EDHP_KNOB_SET(c.link_burst_enter = v)},
    {{"link_burst_loss", KnobGroup::plain, 0.2, 0.9, false, false, 0.12},
     EDHP_KNOB_SET(c.link_burst_loss = v)},
    {{"link_dup", KnobGroup::plain, 0.001, 0.05, true, false, 0.12},
     EDHP_KNOB_SET(c.link_dup = v)},
    {{"link_reorder", KnobGroup::plain, 0.001, 0.1, true, false, 0.12},
     EDHP_KNOB_SET(c.link_reorder = v)},
    // --- Adversarial traffic ----------------------------------------------
    {{"abuse_intensity", KnobGroup::abuse, 0.5, 3.0, false, false, 0.12},
     EDHP_KNOB_SET(a.intensity = v)},
    {{"abuse_corrupt_mtba", KnobGroup::abuse, kH, 12 * kH, true, false, 0.12},
     EDHP_KNOB_SET(a.corrupt_mtba = v)},
    {{"abuse_flood_mtba", KnobGroup::abuse, 2 * kH, 16 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(a.flood_mtba = v)},
    {{"abuse_slowloris_mtba", KnobGroup::abuse, kH, 8 * kH, true, false, 0.12},
     EDHP_KNOB_SET(a.slowloris_mtba = v)},
    {{"abuse_oversize_mtba", KnobGroup::abuse, kH, 12 * kH, true, false, 0.12},
     EDHP_KNOB_SET(a.oversize_mtba = v)},
    {{"abuse_attackers", KnobGroup::abuse, 1, 8, false, true, 0.12},
     EDHP_KNOB_SET(a.attackers_per_class = static_cast<std::size_t>(v))},
    // --- Byzantine lies + defense ablation --------------------------------
    {{"byz_offer_drop_mtbf", KnobGroup::byzantine, 2 * kH, 48 * kH, true,
      false, 0.12},
     EDHP_KNOB_SET(c.byzantine.offer_drop_mtbf = v)},
    {{"byz_offer_truncate_mtbf", KnobGroup::byzantine, 2 * kH, 48 * kH, true,
      false, 0.12},
     EDHP_KNOB_SET(c.byzantine.offer_truncate_mtbf = v)},
    {{"byz_stale_index_mtbf", KnobGroup::byzantine, 2 * kH, 48 * kH, true,
      false, 0.12},
     EDHP_KNOB_SET(c.byzantine.stale_index_mtbf = v)},
    {{"byz_fabricate_mtbf", KnobGroup::byzantine, 2 * kH, 48 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.byzantine.fabricate_mtbf = v)},
    {{"byz_corrupt_search_mtbf", KnobGroup::byzantine, 2 * kH, 48 * kH, true,
      false, 0.12},
     EDHP_KNOB_SET(c.byzantine.corrupt_search_mtbf = v)},
    {{"byz_forge_list_mtba", KnobGroup::byzantine, kH, 24 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.byzantine.forge_list_mtba = v)},
    {{"byz_replay_hello_mtba", KnobGroup::byzantine, kH, 24 * kH, true, false,
      0.12},
     EDHP_KNOB_SET(c.byzantine.replay_hello_mtba = v)},
    {{"byz_no_defend", KnobGroup::byzantine, 1, 1, false, true, 0.06},
     EDHP_KNOB_SET(c.byzantine.defend = (v == 0))},
    // --- Audit self-test backdoor (never sampled: p_on = 0). Kept in the
    // registry so a committed repro can arm it and the shrinker can name
    // it; see ChaosConfig::audit_selftest_drop ----------------------------
    {{"audit_selftest_drop", KnobGroup::plain, 2, 1000, true, true, 0.0},
     EDHP_KNOB_SET(c.audit_selftest_drop = static_cast<std::uint32_t>(v))},
};

#undef EDHP_KNOB_SET

constexpr std::size_t kKnobCount = std::size(kKnobs);

const std::vector<KnobInfo>& info_table() {
  static const std::vector<KnobInfo> table = [] {
    std::vector<KnobInfo> t;
    t.reserve(kKnobCount);
    for (const auto& k : kKnobs) t.push_back(k.info);
    return t;
  }();
  return table;
}

/// Strip leading/trailing blanks (the only whitespace the format allows).
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_value(std::string_view text, std::string_view line) {
  try {
    return std::stod(std::string(text));
  } catch (const std::exception&) {
    throw std::runtime_error("chaos repro: bad value in line: " +
                             std::string(line));
  }
}

}  // namespace

std::span<const KnobInfo> knob_registry() { return info_table(); }

int knob_index(std::string_view name) {
  for (std::size_t i = 0; i < kKnobCount; ++i) {
    if (kKnobs[i].info.name == name) return static_cast<int>(i);
  }
  return -1;
}

ChaosPoint ChaosPoint::without(std::size_t i) const {
  ChaosPoint out;
  out.knobs.reserve(knobs.size() - 1);
  for (std::size_t j = 0; j < knobs.size(); ++j) {
    if (j != i) out.knobs.push_back(knobs[j]);
  }
  return out;
}

ChaosPoint sample_point(Rng& rng) {
  ChaosPoint point;
  for (std::size_t i = 0; i < kKnobCount; ++i) {
    const KnobInfo& k = kKnobs[i].info;
    if (!rng.chance(k.p_on)) continue;
    double v = k.log_scale
                   ? std::exp(rng.uniform(std::log(k.lo), std::log(k.hi)))
                   : rng.uniform(k.lo, k.hi);
    if (k.integer) v = static_cast<double>(std::llround(v));
    point.knobs.emplace_back(i, v);
  }
  return point;
}

void apply(const ChaosPoint& point, fault::ChaosConfig& chaos,
           fault::AbuseConfig& abuse) {
  for (const auto& [index, value] : point.knobs) {
    if (index >= kKnobCount) {
      throw std::runtime_error("chaos point: knob index out of range");
    }
    const KnobImpl& k = kKnobs[index];
    k.set(chaos, abuse, value);
    switch (k.info.group) {
      case KnobGroup::chaos:
        chaos.enabled = true;
        break;
      case KnobGroup::abuse:
        abuse.enabled = true;
        break;
      case KnobGroup::byzantine:
        chaos.byzantine.enabled = true;
        break;
      case KnobGroup::plain:
        break;
    }
  }
}

std::string serialize(const ReproConfig& repro) {
  std::ostringstream out;
  out.precision(17);
  out << "# edhp_chaosfuzz repro (replayed by test_audit + edhp_inspect "
         "audit)\n";
  out << "seed=" << repro.seed << "\n";
  out << "scale=" << repro.scale << "\n";
  out << "days=" << repro.days << "\n";
  out << "honeypots=" << repro.honeypots << "\n";
  out << "expect=" << (repro.expect_imbalance ? "imbalance" : "balanced")
      << "\n";
  auto sorted = repro.point.knobs;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [index, value] : sorted) {
    out << "knob " << kKnobs[index].info.name << "=" << value << "\n";
  }
  return out.str();
}

ReproConfig parse_repro(std::string_view text) {
  ReproConfig repro;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (line.rfind("knob ", 0) == 0) {
      std::string_view body = trim(line.substr(5));
      const std::size_t eq = body.find('=');
      if (eq == std::string_view::npos) {
        throw std::runtime_error("chaos repro: missing '=' in line: " +
                                 std::string(line));
      }
      const std::string_view name = trim(body.substr(0, eq));
      const int index = knob_index(name);
      if (index < 0) {
        throw std::runtime_error("chaos repro: unknown knob: " +
                                 std::string(name));
      }
      repro.point.knobs.emplace_back(static_cast<std::size_t>(index),
                                     parse_value(body.substr(eq + 1), line));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("chaos repro: malformed line: " +
                               std::string(line));
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key == "seed") {
      repro.seed = std::stoull(std::string(value));
    } else if (key == "scale") {
      repro.scale = parse_value(value, line);
    } else if (key == "days") {
      repro.days = parse_value(value, line);
    } else if (key == "honeypots") {
      repro.honeypots = static_cast<std::size_t>(std::stoull(std::string(value)));
    } else if (key == "expect") {
      if (value == "imbalance") {
        repro.expect_imbalance = true;
      } else if (value == "balanced") {
        repro.expect_imbalance = false;
      } else {
        throw std::runtime_error("chaos repro: expect must be balanced or "
                                 "imbalance, got: " +
                                 std::string(value));
      }
    } else {
      throw std::runtime_error("chaos repro: unknown key: " +
                               std::string(key));
    }
  }
  std::sort(repro.point.knobs.begin(), repro.point.knobs.end());
  return repro;
}

}  // namespace edhp::audit
