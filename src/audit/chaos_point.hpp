#pragma once
// The chaos-knob registry: one named, sampleable point in the cross-product
// of every chaos knob family (faults × abuse × byzantine × clocks × budgets
// × link model × manager churn), plus the serialized repro format the
// chaosfuzz tool emits and the regression tests replay.
//
// A ChaosPoint holds only the knobs that differ from their defaults, as
// (registry index, value) pairs — which makes delta-debugging natural: a
// shrink candidate is the same point with one knob removed (reset to its
// default). apply() projects a point onto the real ChaosConfig/AbuseConfig,
// flipping the right `enabled` master switches per knob group.
//
// The repro file format is line-oriented, diff-friendly and committed under
// tests/chaos_corpus/:
//
//   # comment
//   seed=123456
//   scale=0.02
//   days=2
//   honeypots=6
//   expect=imbalance        (or: balanced)
//   knob host_mtbf=14400
//   knob abuse_intensity=1.5

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/abuse.hpp"
#include "fault/fault.hpp"

namespace edhp::audit {

/// Which master switch a knob belongs to (apply() flips it).
enum class KnobGroup : std::uint8_t {
  chaos,     ///< fault::ChaosConfig::enabled
  abuse,     ///< fault::AbuseConfig::enabled
  byzantine, ///< ChaosConfig::byzantine.enabled
  plain,     ///< no master switch (budgets, link model, audit self-test)
};

/// One sampleable knob: a name (stable, serialized), a sampling range and
/// shape, and the group whose master switch it implies.
struct KnobInfo {
  std::string_view name;
  KnobGroup group = KnobGroup::plain;
  double lo = 0;          ///< sampling range (inclusive)
  double hi = 0;
  bool log_scale = false; ///< sample log-uniform (MTBF-style spans)
  bool integer = false;   ///< round the sampled value
  /// Per-point enable probability (0 = never sampled; the audit self-test
  /// backdoor is reachable only through an explicit repro file).
  double p_on = 0.12;
};

/// The full registry, in stable serialization order.
[[nodiscard]] std::span<const KnobInfo> knob_registry();

/// Registry index of `name`, or -1 when unknown.
[[nodiscard]] int knob_index(std::string_view name);

/// One point in the chaos cross-product: the non-default knobs only,
/// sorted by registry index (canonical form; parse/sample both produce it).
struct ChaosPoint {
  std::vector<std::pair<std::size_t, double>> knobs;

  [[nodiscard]] bool empty() const noexcept { return knobs.empty(); }
  /// The point with knob-list entry `i` removed (a ddmin shrink candidate).
  [[nodiscard]] ChaosPoint without(std::size_t i) const;
};

/// Draw a random point: each knob independently enabled with its p_on, its
/// value uniform (or log-uniform) in [lo, hi]. Deterministic in the rng
/// state; every knob consumes draws only when enabled, but the enable coin
/// itself is one draw per knob, so points are independent of registry
/// growth history only within one build.
[[nodiscard]] ChaosPoint sample_point(Rng& rng);

/// Project a point onto live configs: assign every knob's value and flip
/// the master switches its groups imply. Values are clamped to sane ranges
/// by the consuming subsystems, not here.
void apply(const ChaosPoint& point, fault::ChaosConfig& chaos,
           fault::AbuseConfig& abuse);

/// A complete committed repro: campaign shape + point + expected verdict.
struct ReproConfig {
  std::uint64_t seed = 1;
  double scale = 0.02;
  double days = 2.0;
  std::size_t honeypots = 6;
  /// True when the repro is SUPPOSED to imbalance (auditor-catches-it
  /// regression); false pins a once-failing point as now-balanced.
  bool expect_imbalance = false;
  ChaosPoint point;
};

/// Render a repro file (stable ordering; round-trips through parse_repro).
[[nodiscard]] std::string serialize(const ReproConfig& repro);

/// Parse a repro file. Throws std::runtime_error naming the offending line
/// on malformed input or unknown knob names.
[[nodiscard]] ReproConfig parse_repro(std::string_view text);

}  // namespace edhp::audit
