#include "audit/audit.hpp"

#include <sstream>

namespace edhp::audit {

std::string AuditStats::breakdown() const {
  std::ostringstream out;
  out << "born=" << records_born << " merged=" << records_merged
      << " shed=" << records_shed << " excluded=" << records_excluded
      << " lost_tail=" << records_lost_tail
      << " unflushed=" << records_unflushed
      << " quarantined=" << records_quarantined
      << " streamed=" << records_streamed
      << " unaccounted=" << unaccounted();
  return out.str();
}

ImbalanceError::ImbalanceError(const AuditStats& stats)
    : std::runtime_error("record-conservation audit failed: " +
                         stats.breakdown()),
      stats_(stats) {}

void enforce(const AuditStats& stats) {
  if (!stats.enabled || stats.balanced()) return;
  throw ImbalanceError(stats);
}

}  // namespace edhp::audit
