#pragma once
// Record-conservation audit ledger.
//
// The paper's headline claim is measurement *completeness*: the merged,
// anonymised log is a faithful record of everything the honeypots observed.
// Every fault axis added since the seed (crashes, abuse, byzantine lies,
// clock faults, overload) was proven zero-silent-loss one axis at a time;
// this ledger proves it for any *composition* of axes, machine-checked on
// every audited run instead of hand-asserted per scenario.
//
// The model: every record gets a birth certificate the instant a honeypot
// stamps it (Honeypot::append_record), and must end the run with exactly
// one terminal disposition:
//
//   merged       landed in the published dataset;
//   shed         degraded away under a resource budget (at the source or by
//                spool compaction) — budget::DegradeStats::records_shed;
//   excluded     tainted evidence dropped by the merge's integrity filter;
//   lost_tail    destroyed by a host crash before it was ever spooled;
//   unflushed    alive in a honeypot's memory but never cut into a chunk
//                when a durable (post-manager-crash) publish happened;
//   quarantined  resident in a checksum-failed chunk the store set aside
//                and no intact re-send ever replaced;
//   streamed     folded into a count + fingerprint by stream mode.
//
// The balance equation  born == merged + Σ(the rest)  must hold for every
// chaos configuration; a deficit means records vanished with no counter
// admitting it (the exact bug class the one-axis PRs each fixed once).
//
// Disposition precedence (the seams ISSUE 10 satellite 6 pins down):
//   - quarantine is a *state*, not a disposition, while a re-send can still
//     deliver the chunk intact: the store reclassifies the records as
//     stored when the same (honeypot, seq) later lands (see
//     SpoolStore::records_quarantined_resident); only still-resident
//     quarantines at publish time count here;
//   - a corrupt re-send of an already-stored chunk counts a chunk
//     quarantine but zero resident records (they are already durable);
//   - shed and lost_tail are final the moment they happen: a record shed by
//     compaction cannot also be tail-lost (compaction removes it from the
//     log and adjusts the spool mark together), and a tainted record
//     destroyed by either never reaches the merge, so `excluded` counts
//     merge-time drops only — never the stamp-time quarantine tally.
//
// Off-path cost: the ledger reads counters every subsystem already keeps;
// the only hot-path addition is one unconditional integer increment at
// record-stamp time (no RNG, no events, no branches), so chaos-off golden
// datasets are bit-identical with auditing on or off.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace edhp::audit {

/// The filled-in ledger of one measurement run.
struct AuditStats {
  /// Whether the run was audited (imbalance is then a hard failure).
  bool enabled = false;

  std::uint64_t records_born = 0;         ///< stamped by any honeypot
  std::uint64_t records_merged = 0;       ///< in the published dataset
  std::uint64_t records_shed = 0;         ///< degraded away under budgets
  std::uint64_t records_excluded = 0;     ///< tainted, dropped at merge
  std::uint64_t records_lost_tail = 0;    ///< crash-destroyed before spooling
  std::uint64_t records_unflushed = 0;    ///< never chunked at durable publish
  std::uint64_t records_quarantined = 0;  ///< resident in corrupt chunks
  std::uint64_t records_streamed = 0;     ///< folded into count+fingerprint

  /// Sum of every accounted (non-merged) disposition.
  [[nodiscard]] std::uint64_t accounted() const noexcept {
    return records_shed + records_excluded + records_lost_tail +
           records_unflushed + records_quarantined + records_streamed;
  }
  /// born − merged − accounted. Positive: silent loss (records vanished
  /// with no disposition). Negative: double accounting or fabrication
  /// (more dispositions than births). Zero iff the ledger balances.
  [[nodiscard]] std::int64_t unaccounted() const noexcept {
    return static_cast<std::int64_t>(records_born) -
           static_cast<std::int64_t>(records_merged) -
           static_cast<std::int64_t>(accounted());
  }
  [[nodiscard]] bool balanced() const noexcept { return unaccounted() == 0; }

  /// One-line human rendering of the full equation (triage and errors).
  [[nodiscard]] std::string breakdown() const;
};

/// Thrown by enforce() when an audited run's ledger does not balance.
class ImbalanceError : public std::runtime_error {
 public:
  explicit ImbalanceError(const AuditStats& stats);
  [[nodiscard]] const AuditStats& stats() const noexcept { return stats_; }

 private:
  AuditStats stats_;
};

/// Hard-fail an audited imbalance; no-op when `stats.enabled` is false or
/// the ledger balances.
void enforce(const AuditStats& stats);

}  // namespace edhp::audit
