#pragma once
// The directory server's shared-file index: which sessions provide which
// files, plus an inverted keyword index over file names for searches.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "proto/messages.hpp"

namespace edhp::server {

/// Server-internal session identifier (stable per connection).
using SessionKey = std::uint64_t;

/// Provider record kept per (file, session).
struct Provider {
  SessionKey session = 0;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
};

/// File + keyword index. All operations are O(list size) or better; the
/// greedy scenario indexes hundreds of thousands of files.
class FileIndex {
 public:
  /// Replace the shared-file list of a session (OFFER-FILES semantics: the
  /// message carries the full current list). The view flavour is the
  /// primary path: entries may borrow a receive buffer — the index copies
  /// what it retains (names) into its own storage.
  void set_shared_list(SessionKey session, std::uint32_t client_id,
                       std::uint16_t port,
                       std::span<const proto::PublishedFileView> files);
  void set_shared_list(SessionKey session, std::uint32_t client_id,
                       std::uint16_t port,
                       const std::vector<proto::PublishedFile>& files);

  /// Remove every entry of a disconnected session.
  void drop_session(SessionKey session);

  /// Providers of a file, up to `limit` entries. Order is insertion order,
  /// matching the behaviour of 2008-era servers which returned their list
  /// head; callers shuffle if they need sampling.
  [[nodiscard]] std::vector<proto::SourceEntry> sources(const FileId& file,
                                                        std::size_t limit) const;

  /// All files whose name contains every word of `query` (AND semantics),
  /// up to `limit` results.
  [[nodiscard]] std::vector<proto::PublishedFile> search(std::string_view query,
                                                         std::size_t limit) const;

  [[nodiscard]] std::size_t file_count() const noexcept { return files_.size(); }
  [[nodiscard]] std::size_t provider_count() const noexcept { return providers_; }
  [[nodiscard]] bool has_file(const FileId& file) const {
    return files_.contains(file);
  }
  /// Name recorded for a file (first advertiser wins), empty if unknown.
  [[nodiscard]] std::string name_of(const FileId& file) const;

  /// Consistency self-check: verifies every cross-map invariant (provider
  /// count, position map, keyword postings, session ownership) and returns
  /// the number of violations — 0 means internally consistent. Byzantine
  /// staleness is injected *outside* the index (the server defers offers),
  /// so this must hold even in the middle of a lie window: injected
  /// staleness is a modeled fault, never a corrupted index.
  [[nodiscard]] std::size_t audit() const;

 private:
  struct FileEntry {
    std::string name;
    std::uint32_t size = 0;
    std::vector<Provider> providers;
  };

  /// Key of the (file, session) -> provider-position map that makes both
  /// the duplicate check in set_shared_list and remove_provider O(1)
  /// regardless of how many sessions provide a popular file.
  struct ProviderKey {
    FileId file;
    SessionKey session = 0;
    bool operator==(const ProviderKey&) const = default;
  };
  struct ProviderKeyHash {
    std::size_t operator()(const ProviderKey& k) const noexcept {
      const std::size_t h = std::hash<FileId>{}(k.file);
      return h ^ (std::hash<SessionKey>{}(k.session) + 0x9e3779b97f4a7c15ull +
                  (h << 6) + (h >> 2));
    }
  };

  void remove_provider(const FileId& file, SessionKey session);
  void index_words(const FileId& file, const std::string& name);
  void unindex_words(const FileId& file, const std::string& name);

  std::unordered_map<FileId, FileEntry> files_;
  std::unordered_map<std::string, std::unordered_set<FileId>> words_;
  std::unordered_map<SessionKey, std::vector<FileId>> session_files_;
  std::unordered_map<ProviderKey, std::uint32_t, ProviderKeyHash> provider_pos_;
  std::size_t providers_ = 0;
};

}  // namespace edhp::server
