#include "server/server.hpp"

#include <algorithm>

#include "proto/udp_messages.hpp"

namespace edhp::server {
namespace {

/// SplitMix64 step: deterministic forged identities without an RNG object
/// (lie content must be a pure function of the injected seed + sequence).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Server::Server(net::Network& network, net::NodeId self, ServerConfig config)
    : net_(network), self_(self), config_(std::move(config)) {}

Server::~Server() { stop(); }

IpAddr Server::ip() const { return net_.info(self_).ip; }

void Server::start() {
  if (running_) return;
  running_ = true;
  net_.listen(self_, [this](net::EndpointPtr ep) { on_accept(std::move(ep)); });
  if (config_.answer_udp_status) {
    net_.listen_datagram(self_, [this](net::NodeId from, net::Bytes datagram) {
      on_datagram(from, std::move(datagram));
    });
  }
}

void Server::stop() {
  if (!running_) return;
  running_ = false;
  net_.stop_listening(self_);
  net_.stop_listening_datagram(self_);
  for (auto& [key, session] : sessions_) {
    index_.drop_session(key);
    net_.simulation().cancel(session.reap);
    if (session.endpoint) session.endpoint->close();
  }
  sessions_.clear();
  inbox_.clear();
  inbox_armed_ = false;
  connect_buckets_.clear();
  // Deferred stale-window offers die with their sessions.
  stale_pending_.clear();
}

void Server::on_accept(net::EndpointPtr endpoint) {
  if (sessions_.size() >= config_.hard_session_cap) {
    // The fd-limit analog: even an undefended server cannot hold unbounded
    // sessions, it just sheds indiscriminately once the kernel says no.
    counters_.add("hard_cap_refused");
    endpoint->close();
    return;
  }
  const auto& defense = config_.defense;
  if (defense.enabled) {
    const Time now = net_.simulation().now();
    // LIFO shedding: at the cap the NEWEST arrival — this one — is shed;
    // established sessions carry the measurement and are never sacrificed.
    if (sessions_.size() >= defense.max_sessions) {
      counters_.add("shed");
      defense_.shed += 1;
      endpoint->close();
      return;
    }
    auto bucket = connect_buckets_
                      .try_emplace(endpoint->remote_node(), defense.connect_rate,
                                   defense.connect_burst, now)
                      .first;
    if (!bucket->second.try_take(now)) {
      counters_.add("connect_rate_limited");
      defense_.rate_limited += 1;
      endpoint->close();
      return;
    }
  }
  const SessionKey key = next_key_++;
  Session session;
  session.endpoint = std::move(endpoint);
  session.key = key;
  auto [it, inserted] = sessions_.emplace(key, std::move(session));
  net::Endpoint& ep = *it->second.endpoint;
  ep.on_message([this, key](net::Bytes packet) { on_message(key, std::move(packet)); });
  ep.on_close([this, key] { on_close(key); });
  if (defense.enabled) {
    defense_.accepted += 1;
    it->second.bucket = net::TokenBucket(defense.message_rate,
                                         defense.message_burst,
                                         net_.simulation().now());
    arm_reap(it->second, defense.handshake_timeout);
  }
  counters_.add("accepted");
}

void Server::arm_reap(Session& session, Duration timeout) {
  auto& sim = net_.simulation();
  sim.cancel(session.reap);  // O(1); harmless on an invalid/spent handle
  if (timeout <= 0) return;
  const SessionKey key = session.key;
  session.reap = sim.schedule_in(timeout, [this, key] { reap(key); });
}

void Server::reap(SessionKey key) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  counters_.add("reaped");
  defense_.reaped += 1;
  it->second.endpoint->close();
  drop(key);
}

void Server::on_datagram(net::NodeId from, net::Bytes datagram) {
  proto::AnyUdpMessage msg;
  try {
    msg = proto::decode_udp(datagram);
  } catch (const DecodeError&) {
    counters_.add("udp_decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    return;
  }
  if (const auto* req = std::get_if<proto::ServStatRequest>(&msg)) {
    counters_.add("udp_status_requests");
    proto::ServStatResponse res;
    res.challenge = req->challenge;
    res.users = static_cast<std::uint32_t>(sessions_.size());
    res.files = static_cast<std::uint32_t>(index_.file_count());
    net_.send_datagram(self_, from, proto::encode_udp(res));
    return;
  }
  if (std::holds_alternative<proto::ServDescRequest>(msg)) {
    counters_.add("udp_desc_requests");
    proto::ServDescResponse res;
    res.name = config_.name;
    res.description = config_.description;
    net_.send_datagram(self_, from, proto::encode_udp(std::move(res)));
    return;
  }
  counters_.add("udp_unexpected");
}

void Server::on_close(SessionKey key) {
  counters_.add("closed");
  drop(key);
}

void Server::drop(SessionKey key) {
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    net_.simulation().cancel(it->second.reap);
  }
  index_.drop_session(key);
  sessions_.erase(key);
}

void Server::on_message(SessionKey key, net::Bytes packet) {
  const auto& defense = config_.defense;
  if (!defense.enabled) {
    process(key, std::move(packet));
    return;
  }
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  if (!it->second.bucket.try_take(net_.simulation().now())) {
    counters_.add("rate_limited");
    defense_.rate_limited += 1;
    return;  // dropped, not fatal: a later in-budget message still works
  }
  inbox_.emplace_back(key, std::move(packet));
  if (inbox_.size() > defense.max_queue) {
    // Overload: shed oldest-first so the queue stays bounded and fresh
    // traffic (which the sender will retry least) survives.
    inbox_.pop_front();
    counters_.add("queue_dropped");
    defense_.queue_dropped += 1;
  }
  if (!inbox_armed_) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Server::service_inbox() {
  inbox_armed_ = false;
  std::size_t budget = std::max<std::size_t>(1, config_.defense.queue_batch);
  while (budget-- > 0 && !inbox_.empty()) {
    auto [key, packet] = std::move(inbox_.front());
    inbox_.pop_front();
    process(key, std::move(packet));
  }
  if (!inbox_.empty()) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(config_.defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Server::process(SessionKey key, net::Bytes packet) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_server, packet, arena_);
  } catch (const DecodeError&) {
    // Malformed traffic: count it, then close the connection, as lugdunum
    // servers do.
    counters_.add("decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    session.endpoint->close();
    drop(key);
    return;
  }

  if (config_.defense.enabled) {
    arm_reap(session, config_.defense.idle_timeout);
  }

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequestView> ||
                      std::is_same_v<T, proto::OfferFilesView> ||
                      std::is_same_v<T, proto::GetSources> ||
                      std::is_same_v<T, proto::SearchRequestView>) {
          handle(session, m);
        } else {
          counters_.add("unexpected_messages");
        }
      },
      msg);
}

void Server::handle(Session& session, const proto::LoginRequestView& msg) {
  counters_.add("logins");
  session.user = msg.user;
  session.port = msg.port;
  session.logged_in = true;

  // HighID when the client is directly reachable (the server "probes" the
  // advertised port; in the simulation reachability is a node property),
  // LowID otherwise.
  const auto remote = session.endpoint->remote_node();
  if (net_.info(remote).reachable) {
    session.client_id = ClientId::high(net_.info(remote).ip);
  } else {
    session.client_id = ClientId(next_low_id_++);
    if (next_low_id_ >= ClientId::kLowIdThreshold) next_low_id_ = 1;
    counters_.add("low_ids");
  }
  session.endpoint->send(
      proto::encode(proto::IdChange{session.client_id.value(), 0}));
}

void Server::handle(Session& session, const proto::OfferFilesView& msg) {
  if (!session.logged_in) {
    counters_.add("offer_before_login");
    return;
  }
  counters_.add("offers");
  counters_.add("offered_files", msg.files.count);
  const auto views = arena_.of(msg.files);
  if (lies_.drop_offers) {
    // No protocol-level ack exists for OFFER-FILES, so the client cannot
    // tell: only an advertise-and-verify self-probe surfaces this.
    counters_.add("byz_offers_dropped");
    return;
  }
  std::size_t keep = views.size();
  if (lies_.truncate_offers && keep > 0) {
    keep = static_cast<std::size_t>(
        static_cast<double>(keep) *
        std::clamp(lies_.truncate_keep, 0.0, 1.0));
    counters_.add("byz_offers_truncated");
  }
  if (lies_.stale_index) {
    // Evict early (the session's previous ad vanishes now), index late
    // (the new list lands only when the window ends).
    index_.drop_session(session.key);
    PendingOffer pending;
    pending.key = session.key;
    pending.client_id = session.client_id.value();
    pending.port = session.port;
    pending.files.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      const auto& f = views[i];
      pending.files.push_back(proto::PublishedFile{
          f.file, f.client_id, f.port, std::string(f.name), f.size});
    }
    auto it = std::find_if(stale_pending_.begin(), stale_pending_.end(),
                           [&](const PendingOffer& p) {
                             return p.key == session.key;
                           });
    if (it != stale_pending_.end()) {
      *it = std::move(pending);
    } else {
      stale_pending_.push_back(std::move(pending));
    }
    counters_.add("byz_offers_deferred");
    return;
  }
  index_.set_shared_list(session.key, session.client_id.value(), session.port,
                         views.first(keep));
}

void Server::handle(Session& session, const proto::GetSources& msg) {
  if (!session.logged_in) return;
  counters_.add("get_sources");
  auto sources =
      index_.sources(msg.file, std::min<std::size_t>(config_.max_sources_per_reply, 255));
  if (lies_.fabricate_count > 0) {
    // Forge sources pointing at nonexistent peers: plausible HighIDs drawn
    // from the seeded sequence. Clients waste connection attempts on them;
    // a canary probe (GET-SOURCES for a hash nobody has) proves the lie.
    std::size_t forged = 0;
    while (forged < lies_.fabricate_count && sources.size() < 255) {
      const std::uint64_t h = mix64(lies_.fabricate_seed + ++fabricate_counter_);
      proto::SourceEntry entry;
      entry.client_id = static_cast<std::uint32_t>(h) | 0x80000000u;
      entry.port = 4662;
      sources.push_back(entry);
      ++forged;
    }
    counters_.add("byz_sources_fabricated", forged);
  }
  session.endpoint->send(
      proto::encode(proto::FoundSources{msg.file, std::move(sources)}));
}

void Server::handle(Session& session, const proto::SearchRequestView& msg) {
  if (!session.logged_in) return;
  counters_.add("searches");
  auto files = index_.search(msg.query, config_.max_search_results);
  if (lies_.corrupt_search && !files.empty()) {
    // Garble every returned hash: the names still look right, the ids are
    // junk — the measurement poison a self-probe is built to catch.
    for (auto& f : files) {
      const std::uint64_t h = mix64(lies_.corrupt_seed + ++corrupt_counter_);
      f.file = FileId::from_words(h, mix64(h));
    }
    counters_.add("byz_searches_corrupted");
  }
  session.endpoint->send(proto::encode(proto::SearchResult{std::move(files)}));
}

void Server::set_drop_offers(bool active) { lies_.drop_offers = active; }

void Server::set_truncate_offers(bool active, double keep) {
  lies_.truncate_offers = active;
  lies_.truncate_keep = active ? keep : 1.0;
}

void Server::set_stale_index(bool active) {
  if (lies_.stale_index && !active) {
    lies_.stale_index = false;
    apply_stale_pending();
    return;
  }
  lies_.stale_index = active;
}

void Server::set_fabricate_sources(bool active, std::size_t count,
                                   std::uint64_t seed) {
  lies_.fabricate_count = active ? count : 0;
  lies_.fabricate_seed = seed;
}

void Server::set_corrupt_search(bool active, std::uint64_t seed) {
  lies_.corrupt_search = active;
  lies_.corrupt_seed = seed;
}

void Server::apply_stale_pending() {
  // Indexed late: deferred offers land now, in arrival order, for sessions
  // that survived the window. A stop() in between dropped the sessions, so
  // their deferred lists simply evaporate (exactly what a restarted lying
  // server would do).
  for (auto& pending : stale_pending_) {
    auto it = sessions_.find(pending.key);
    if (it == sessions_.end() || !it->second.logged_in) continue;
    index_.set_shared_list(pending.key, pending.client_id, pending.port,
                           pending.files);
    counters_.add("byz_offers_late_indexed");
  }
  stale_pending_.clear();
}

}  // namespace edhp::server
