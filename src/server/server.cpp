#include "server/server.hpp"

#include <algorithm>

#include "proto/udp_messages.hpp"

namespace edhp::server {

Server::Server(net::Network& network, net::NodeId self, ServerConfig config)
    : net_(network), self_(self), config_(std::move(config)) {}

Server::~Server() { stop(); }

IpAddr Server::ip() const { return net_.info(self_).ip; }

void Server::start() {
  if (running_) return;
  running_ = true;
  net_.listen(self_, [this](net::EndpointPtr ep) { on_accept(std::move(ep)); });
  if (config_.answer_udp_status) {
    net_.listen_datagram(self_, [this](net::NodeId from, net::Bytes datagram) {
      on_datagram(from, std::move(datagram));
    });
  }
}

void Server::stop() {
  if (!running_) return;
  running_ = false;
  net_.stop_listening(self_);
  net_.stop_listening_datagram(self_);
  for (auto& [key, session] : sessions_) {
    index_.drop_session(key);
    net_.simulation().cancel(session.reap);
    if (session.endpoint) session.endpoint->close();
  }
  sessions_.clear();
  inbox_.clear();
  inbox_armed_ = false;
  connect_buckets_.clear();
}

void Server::on_accept(net::EndpointPtr endpoint) {
  if (sessions_.size() >= config_.hard_session_cap) {
    // The fd-limit analog: even an undefended server cannot hold unbounded
    // sessions, it just sheds indiscriminately once the kernel says no.
    counters_.add("hard_cap_refused");
    endpoint->close();
    return;
  }
  const auto& defense = config_.defense;
  if (defense.enabled) {
    const Time now = net_.simulation().now();
    // LIFO shedding: at the cap the NEWEST arrival — this one — is shed;
    // established sessions carry the measurement and are never sacrificed.
    if (sessions_.size() >= defense.max_sessions) {
      counters_.add("shed");
      defense_.shed += 1;
      endpoint->close();
      return;
    }
    auto bucket = connect_buckets_
                      .try_emplace(endpoint->remote_node(), defense.connect_rate,
                                   defense.connect_burst, now)
                      .first;
    if (!bucket->second.try_take(now)) {
      counters_.add("connect_rate_limited");
      defense_.rate_limited += 1;
      endpoint->close();
      return;
    }
  }
  const SessionKey key = next_key_++;
  Session session;
  session.endpoint = std::move(endpoint);
  session.key = key;
  auto [it, inserted] = sessions_.emplace(key, std::move(session));
  net::Endpoint& ep = *it->second.endpoint;
  ep.on_message([this, key](net::Bytes packet) { on_message(key, std::move(packet)); });
  ep.on_close([this, key] { on_close(key); });
  if (defense.enabled) {
    defense_.accepted += 1;
    it->second.bucket = net::TokenBucket(defense.message_rate,
                                         defense.message_burst,
                                         net_.simulation().now());
    arm_reap(it->second, defense.handshake_timeout);
  }
  counters_.add("accepted");
}

void Server::arm_reap(Session& session, Duration timeout) {
  auto& sim = net_.simulation();
  sim.cancel(session.reap);  // O(1); harmless on an invalid/spent handle
  if (timeout <= 0) return;
  const SessionKey key = session.key;
  session.reap = sim.schedule_in(timeout, [this, key] { reap(key); });
}

void Server::reap(SessionKey key) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  counters_.add("reaped");
  defense_.reaped += 1;
  it->second.endpoint->close();
  drop(key);
}

void Server::on_datagram(net::NodeId from, net::Bytes datagram) {
  proto::AnyUdpMessage msg;
  try {
    msg = proto::decode_udp(datagram);
  } catch (const DecodeError&) {
    counters_.add("udp_decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    return;
  }
  if (const auto* req = std::get_if<proto::ServStatRequest>(&msg)) {
    counters_.add("udp_status_requests");
    proto::ServStatResponse res;
    res.challenge = req->challenge;
    res.users = static_cast<std::uint32_t>(sessions_.size());
    res.files = static_cast<std::uint32_t>(index_.file_count());
    net_.send_datagram(self_, from, proto::encode_udp(res));
    return;
  }
  if (std::holds_alternative<proto::ServDescRequest>(msg)) {
    counters_.add("udp_desc_requests");
    proto::ServDescResponse res;
    res.name = config_.name;
    res.description = config_.description;
    net_.send_datagram(self_, from, proto::encode_udp(std::move(res)));
    return;
  }
  counters_.add("udp_unexpected");
}

void Server::on_close(SessionKey key) {
  counters_.add("closed");
  drop(key);
}

void Server::drop(SessionKey key) {
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    net_.simulation().cancel(it->second.reap);
  }
  index_.drop_session(key);
  sessions_.erase(key);
}

void Server::on_message(SessionKey key, net::Bytes packet) {
  const auto& defense = config_.defense;
  if (!defense.enabled) {
    process(key, std::move(packet));
    return;
  }
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  if (!it->second.bucket.try_take(net_.simulation().now())) {
    counters_.add("rate_limited");
    defense_.rate_limited += 1;
    return;  // dropped, not fatal: a later in-budget message still works
  }
  inbox_.emplace_back(key, std::move(packet));
  if (inbox_.size() > defense.max_queue) {
    // Overload: shed oldest-first so the queue stays bounded and fresh
    // traffic (which the sender will retry least) survives.
    inbox_.pop_front();
    counters_.add("queue_dropped");
    defense_.queue_dropped += 1;
  }
  if (!inbox_armed_) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Server::service_inbox() {
  inbox_armed_ = false;
  std::size_t budget = std::max<std::size_t>(1, config_.defense.queue_batch);
  while (budget-- > 0 && !inbox_.empty()) {
    auto [key, packet] = std::move(inbox_.front());
    inbox_.pop_front();
    process(key, std::move(packet));
  }
  if (!inbox_.empty()) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(config_.defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Server::process(SessionKey key, net::Bytes packet) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_server, packet, arena_);
  } catch (const DecodeError&) {
    // Malformed traffic: count it, then close the connection, as lugdunum
    // servers do.
    counters_.add("decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    session.endpoint->close();
    drop(key);
    return;
  }

  if (config_.defense.enabled) {
    arm_reap(session, config_.defense.idle_timeout);
  }

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequestView> ||
                      std::is_same_v<T, proto::OfferFilesView> ||
                      std::is_same_v<T, proto::GetSources> ||
                      std::is_same_v<T, proto::SearchRequestView>) {
          handle(session, m);
        } else {
          counters_.add("unexpected_messages");
        }
      },
      msg);
}

void Server::handle(Session& session, const proto::LoginRequestView& msg) {
  counters_.add("logins");
  session.user = msg.user;
  session.port = msg.port;
  session.logged_in = true;

  // HighID when the client is directly reachable (the server "probes" the
  // advertised port; in the simulation reachability is a node property),
  // LowID otherwise.
  const auto remote = session.endpoint->remote_node();
  if (net_.info(remote).reachable) {
    session.client_id = ClientId::high(net_.info(remote).ip);
  } else {
    session.client_id = ClientId(next_low_id_++);
    if (next_low_id_ >= ClientId::kLowIdThreshold) next_low_id_ = 1;
    counters_.add("low_ids");
  }
  session.endpoint->send(
      proto::encode(proto::IdChange{session.client_id.value(), 0}));
}

void Server::handle(Session& session, const proto::OfferFilesView& msg) {
  if (!session.logged_in) {
    counters_.add("offer_before_login");
    return;
  }
  counters_.add("offers");
  counters_.add("offered_files", msg.files.count);
  index_.set_shared_list(session.key, session.client_id.value(), session.port,
                         arena_.of(msg.files));
}

void Server::handle(Session& session, const proto::GetSources& msg) {
  if (!session.logged_in) return;
  counters_.add("get_sources");
  auto sources =
      index_.sources(msg.file, std::min<std::size_t>(config_.max_sources_per_reply, 255));
  session.endpoint->send(
      proto::encode(proto::FoundSources{msg.file, std::move(sources)}));
}

void Server::handle(Session& session, const proto::SearchRequestView& msg) {
  if (!session.logged_in) return;
  counters_.add("searches");
  auto files = index_.search(msg.query, config_.max_search_results);
  session.endpoint->send(proto::encode(proto::SearchResult{std::move(files)}));
}

}  // namespace edhp::server
