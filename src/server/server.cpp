#include "server/server.hpp"

#include "proto/udp_messages.hpp"

namespace edhp::server {

Server::Server(net::Network& network, net::NodeId self, ServerConfig config)
    : net_(network), self_(self), config_(std::move(config)) {}

Server::~Server() { stop(); }

IpAddr Server::ip() const { return net_.info(self_).ip; }

void Server::start() {
  if (running_) return;
  running_ = true;
  net_.listen(self_, [this](net::EndpointPtr ep) { on_accept(std::move(ep)); });
  if (config_.answer_udp_status) {
    net_.listen_datagram(self_, [this](net::NodeId from, net::Bytes datagram) {
      on_datagram(from, std::move(datagram));
    });
  }
}

void Server::stop() {
  if (!running_) return;
  running_ = false;
  net_.stop_listening(self_);
  net_.stop_listening_datagram(self_);
  for (auto& [key, session] : sessions_) {
    index_.drop_session(key);
    if (session.endpoint) session.endpoint->close();
  }
  sessions_.clear();
}

void Server::on_accept(net::EndpointPtr endpoint) {
  const SessionKey key = next_key_++;
  Session session;
  session.endpoint = std::move(endpoint);
  session.key = key;
  auto [it, inserted] = sessions_.emplace(key, std::move(session));
  net::Endpoint& ep = *it->second.endpoint;
  ep.on_message([this, key](net::Bytes packet) { on_message(key, std::move(packet)); });
  ep.on_close([this, key] { on_close(key); });
  counters_.add("accepted");
}

void Server::on_datagram(net::NodeId from, net::Bytes datagram) {
  proto::AnyUdpMessage msg;
  try {
    msg = proto::decode_udp(datagram);
  } catch (const DecodeError&) {
    counters_.add("udp_decode_errors");
    return;
  }
  if (const auto* req = std::get_if<proto::ServStatRequest>(&msg)) {
    counters_.add("udp_status_requests");
    proto::ServStatResponse res;
    res.challenge = req->challenge;
    res.users = static_cast<std::uint32_t>(sessions_.size());
    res.files = static_cast<std::uint32_t>(index_.file_count());
    net_.send_datagram(self_, from, proto::encode_udp(res));
    return;
  }
  if (std::holds_alternative<proto::ServDescRequest>(msg)) {
    counters_.add("udp_desc_requests");
    proto::ServDescResponse res;
    res.name = config_.name;
    res.description = config_.description;
    net_.send_datagram(self_, from, proto::encode_udp(std::move(res)));
    return;
  }
  counters_.add("udp_unexpected");
}

void Server::on_close(SessionKey key) {
  counters_.add("closed");
  drop(key);
}

void Server::drop(SessionKey key) {
  index_.drop_session(key);
  sessions_.erase(key);
}

void Server::on_message(SessionKey key, net::Bytes packet) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  proto::AnyMessage msg;
  try {
    msg = proto::decode(proto::Channel::client_server, packet);
  } catch (const DecodeError&) {
    // Malformed traffic: close the connection, as lugdunum servers do.
    counters_.add("decode_errors");
    session.endpoint->close();
    drop(key);
    return;
  }

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequest> ||
                      std::is_same_v<T, proto::OfferFiles> ||
                      std::is_same_v<T, proto::GetSources> ||
                      std::is_same_v<T, proto::SearchRequest>) {
          handle(session, m);
        } else {
          counters_.add("unexpected_messages");
        }
      },
      msg);
}

void Server::handle(Session& session, const proto::LoginRequest& msg) {
  counters_.add("logins");
  session.user = msg.user;
  session.port = msg.port;
  session.logged_in = true;

  // HighID when the client is directly reachable (the server "probes" the
  // advertised port; in the simulation reachability is a node property),
  // LowID otherwise.
  const auto remote = session.endpoint->remote_node();
  if (net_.info(remote).reachable) {
    session.client_id = ClientId::high(net_.info(remote).ip);
  } else {
    session.client_id = ClientId(next_low_id_++);
    if (next_low_id_ >= ClientId::kLowIdThreshold) next_low_id_ = 1;
    counters_.add("low_ids");
  }
  session.endpoint->send(
      proto::encode(proto::IdChange{session.client_id.value(), 0}));
}

void Server::handle(Session& session, const proto::OfferFiles& msg) {
  if (!session.logged_in) {
    counters_.add("offer_before_login");
    return;
  }
  counters_.add("offers");
  counters_.add("offered_files", msg.files.size());
  index_.set_shared_list(session.key, session.client_id.value(), session.port,
                         msg.files);
}

void Server::handle(Session& session, const proto::GetSources& msg) {
  if (!session.logged_in) return;
  counters_.add("get_sources");
  auto sources =
      index_.sources(msg.file, std::min<std::size_t>(config_.max_sources_per_reply, 255));
  session.endpoint->send(
      proto::encode(proto::FoundSources{msg.file, std::move(sources)}));
}

void Server::handle(Session& session, const proto::SearchRequest& msg) {
  if (!session.logged_in) return;
  counters_.add("searches");
  auto files = index_.search(msg.query, config_.max_search_results);
  session.endpoint->send(proto::encode(proto::SearchResult{std::move(files)}));
}

}  // namespace edhp::server
