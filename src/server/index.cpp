#include "server/index.hpp"

#include <algorithm>

#include "common/text.hpp"

namespace edhp::server {

void FileIndex::set_shared_list(SessionKey session, std::uint32_t client_id,
                                std::uint16_t port,
                                const std::vector<proto::PublishedFile>& files) {
  std::vector<proto::PublishedFileView> views;
  views.reserve(files.size());
  for (const auto& f : files) {
    views.push_back(
        proto::PublishedFileView{f.file, f.client_id, f.port, f.name, f.size, {}});
  }
  set_shared_list(session, client_id, port, views);
}

void FileIndex::set_shared_list(SessionKey session, std::uint32_t client_id,
                                std::uint16_t port,
                                std::span<const proto::PublishedFileView> files) {
  // OFFER-FILES replaces the session's list: drop old entries first.
  drop_session(session);

  auto& owned = session_files_[session];
  owned.reserve(files.size());
  for (const auto& f : files) {
    auto [it, inserted] = files_.try_emplace(f.file);
    FileEntry& entry = it->second;
    if (inserted) {
      entry.name = f.name;
      entry.size = f.size;
      index_words(f.file, entry.name);
    }
    // A session may list the same hash twice under different names; keep a
    // single provider record per (file, session).
    const bool fresh =
        provider_pos_
            .try_emplace(ProviderKey{f.file, session},
                         static_cast<std::uint32_t>(entry.providers.size()))
            .second;
    if (fresh) {
      entry.providers.push_back(Provider{session, client_id, port});
      owned.push_back(f.file);
      ++providers_;
    }
  }
  if (owned.empty()) {
    session_files_.erase(session);
  }
}

void FileIndex::drop_session(SessionKey session) {
  auto it = session_files_.find(session);
  if (it == session_files_.end()) return;
  for (const auto& file : it->second) {
    remove_provider(file, session);
  }
  session_files_.erase(it);
}

void FileIndex::remove_provider(const FileId& file, SessionKey session) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  auto& providers = it->second.providers;
  const auto pp = provider_pos_.find(ProviderKey{file, session});
  if (pp == provider_pos_.end()) return;
  const std::uint32_t idx = pp->second;
  provider_pos_.erase(pp);
  // Same swap-remove as the pre-index code, so provider (and therefore
  // sources()) order is preserved bit-for-bit.
  providers[idx] = providers.back();
  providers.pop_back();
  if (idx < providers.size()) {
    provider_pos_.find(ProviderKey{file, providers[idx].session})->second = idx;
  }
  --providers_;
  if (providers.empty()) {
    unindex_words(file, it->second.name);
    files_.erase(it);
  }
}

std::vector<proto::SourceEntry> FileIndex::sources(const FileId& file,
                                                   std::size_t limit) const {
  std::vector<proto::SourceEntry> out;
  auto it = files_.find(file);
  if (it == files_.end()) return out;
  const auto& providers = it->second.providers;
  out.reserve(std::min(limit, providers.size()));
  for (const auto& p : providers) {
    if (out.size() >= limit) break;
    out.push_back(proto::SourceEntry{p.client_id, p.port});
  }
  return out;
}

std::vector<proto::PublishedFile> FileIndex::search(std::string_view query,
                                                    std::size_t limit) const {
  std::vector<proto::PublishedFile> out;
  const auto terms = tokenize(query);
  if (terms.empty()) return out;

  // Start from the rarest term's posting list, then filter by the rest.
  const std::unordered_set<FileId>* smallest = nullptr;
  for (const auto& t : terms) {
    auto it = words_.find(t);
    if (it == words_.end()) return out;  // AND semantics: missing term
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      smallest = &it->second;
    }
  }

  for (const auto& file : *smallest) {
    if (out.size() >= limit) break;
    auto fit = files_.find(file);
    if (fit == files_.end()) continue;
    const auto words_of_file = tokenize(fit->second.name);
    const bool all = std::all_of(terms.begin(), terms.end(), [&](const auto& t) {
      return std::find(words_of_file.begin(), words_of_file.end(), t) !=
             words_of_file.end();
    });
    if (!all) continue;
    const auto& first = fit->second.providers.front();
    proto::PublishedFile pf;
    pf.file = file;
    pf.client_id = first.client_id;
    pf.port = first.port;
    pf.name = fit->second.name;
    pf.size = fit->second.size;
    out.push_back(std::move(pf));
  }
  return out;
}

std::string FileIndex::name_of(const FileId& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? std::string{} : it->second.name;
}

std::size_t FileIndex::audit() const {
  std::size_t violations = 0;
  std::size_t provider_records = 0;
  for (const auto& [file, entry] : files_) {
    // A file with no providers must have been erased by remove_provider.
    if (entry.providers.empty()) ++violations;
    provider_records += entry.providers.size();
    for (std::uint32_t i = 0; i < entry.providers.size(); ++i) {
      // Every provider slot is mirrored in the position map, at its slot.
      const auto pp =
          provider_pos_.find(ProviderKey{file, entry.providers[i].session});
      if (pp == provider_pos_.end() || pp->second != i) ++violations;
    }
    // Every word of the recorded name posts back to this file.
    for (const auto& w : tokenize(entry.name)) {
      auto it = words_.find(w);
      if (it == words_.end() || !it->second.contains(file)) ++violations;
    }
  }
  if (provider_records != providers_) ++violations;
  if (provider_records != provider_pos_.size()) ++violations;
  // Session ownership round-trips: every owned file has a provider record.
  for (const auto& [session, owned] : session_files_) {
    if (owned.empty()) ++violations;
    for (const auto& file : owned) {
      if (!provider_pos_.contains(ProviderKey{file, session})) ++violations;
    }
  }
  // No orphan postings: every posted file still exists.
  for (const auto& [word, posting] : words_) {
    if (posting.empty()) ++violations;
    for (const auto& file : posting) {
      if (!files_.contains(file)) ++violations;
    }
  }
  return violations;
}

void FileIndex::index_words(const FileId& file, const std::string& name) {
  for (const auto& w : tokenize(name)) {
    words_[w].insert(file);
  }
}

void FileIndex::unindex_words(const FileId& file, const std::string& name) {
  for (const auto& w : tokenize(name)) {
    auto it = words_.find(w);
    if (it == words_.end()) continue;
    it->second.erase(file);
    if (it->second.empty()) {
      words_.erase(it);
    }
  }
}

}  // namespace edhp::server
