#pragma once
// eDonkey directory server.
//
// Implements the server half of the client-server protocol the honeypots
// and simulated peers speak: login with HighID/LowID assignment, shared-file
// indexing via OFFER-FILES, source lookup via GET-SOURCES and keyword
// search. All traffic is real eDonkey wire bytes over the simulated
// transport.

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/admission.hpp"
#include "net/network.hpp"
#include "proto/messages.hpp"
#include "server/index.hpp"
#include "sim/metrics.hpp"

namespace edhp::server {

struct ServerConfig {
  std::string name = "edhp directory server";
  std::string description = "simulated lugdunum-style server";
  /// Cap on sources per FOUND-SOURCES reply (wire limit is 255).
  std::size_t max_sources_per_reply = 200;
  /// Cap on search results per reply.
  std::size_t max_search_results = 200;
  /// Answer UDP status pings (used by the manager's server selection).
  bool answer_udp_status = true;
  /// Admission-control knobs (off by default; see net/admission.hpp).
  net::DefenseConfig defense;
  /// Hard fd-limit analog, enforced even with the defense layer disabled.
  /// Far above anything benign traffic reaches, so an undefended server is
  /// still genuinely harmed by a flood (sessions pile up to here).
  std::size_t hard_session_cap = 4096;
};

/// Injected Byzantine misbehavior switches — modeled faults, not bugs. The
/// fault layer flips these through scenario bindings (fault/byzantine.hpp);
/// all default off, and the handlers consult them before the index so the
/// index itself stays consistent (FileIndex::audit) through every lie.
struct ServerLies {
  bool drop_offers = false;       ///< silently ignore OFFER-FILES
  bool truncate_offers = false;   ///< index only a prefix of each list
  double truncate_keep = 1.0;     ///< fraction kept while truncating
  bool stale_index = false;       ///< defer offers; evict on keepalive
  std::size_t fabricate_count = 0;///< forged entries per GET-SOURCES reply
  std::uint64_t fabricate_seed = 0;
  bool corrupt_search = false;    ///< garble search-reply file ids
  std::uint64_t corrupt_seed = 0;
};

/// A directory server attached to one network node.
class Server {
 public:
  Server(net::Network& network, net::NodeId self, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Begin accepting client connections.
  void start();
  /// Stop accepting and drop all sessions (simulates a server restart).
  void stop();

  [[nodiscard]] net::NodeId node() const noexcept { return self_; }
  [[nodiscard]] IpAddr ip() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

  [[nodiscard]] const FileIndex& index() const noexcept { return index_; }
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] const sim::CounterSet& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const net::DefenseStats& defense_stats() const noexcept {
    return defense_;
  }

  // --- Byzantine lie switches (see ServerLies) ---------------------------
  void set_drop_offers(bool active);
  void set_truncate_offers(bool active, double keep);
  /// Deactivating applies the deferred offers (indexed late).
  void set_stale_index(bool active);
  void set_fabricate_sources(bool active, std::size_t count,
                             std::uint64_t seed);
  void set_corrupt_search(bool active, std::uint64_t seed);
  [[nodiscard]] const ServerLies& lies() const noexcept { return lies_; }
  /// Index consistency self-check (0 = consistent). Lie windows defer and
  /// drop *outside* the index, so this must hold even mid-window.
  [[nodiscard]] std::size_t index_audit() const { return index_.audit(); }

 private:
  struct Session {
    net::EndpointPtr endpoint;
    SessionKey key = 0;
    ClientId client_id{};
    UserId user{};
    std::uint16_t port = 0;
    bool logged_in = false;
    net::TokenBucket bucket;   ///< per-session message budget (defense)
    sim::EventHandle reap;     ///< pending handshake/idle timeout
  };

  void on_accept(net::EndpointPtr endpoint);
  void on_message(SessionKey key, net::Bytes packet);
  void on_datagram(net::NodeId from, net::Bytes datagram);
  void on_close(SessionKey key);
  void drop(SessionKey key);
  /// Decode and dispatch one inbound packet (post-admission).
  void process(SessionKey key, net::Bytes packet);
  /// (Re)schedule the session's reap timer; O(1) cancel of the old one.
  void arm_reap(Session& session, Duration timeout);
  void reap(SessionKey key);
  /// Drain up to queue_batch packets from the bounded inbound queue.
  void service_inbox();

  void handle(Session& session, const proto::LoginRequestView& msg);
  void handle(Session& session, const proto::OfferFilesView& msg);
  void handle(Session& session, const proto::GetSources& msg);
  void handle(Session& session, const proto::SearchRequestView& msg);

  /// One offer deferred by a stale-index window (owned copy; applied when
  /// the window ends, if the session still exists).
  struct PendingOffer {
    SessionKey key = 0;
    std::uint32_t client_id = 0;
    std::uint16_t port = 0;
    std::vector<proto::PublishedFile> files;
  };

  void apply_stale_pending();

  net::Network& net_;
  net::NodeId self_;
  ServerConfig config_;
  ServerLies lies_;
  std::vector<PendingOffer> stale_pending_;  ///< last offer per session wins
  std::uint64_t fabricate_counter_ = 0;      ///< forged-identity sequence
  std::uint64_t corrupt_counter_ = 0;        ///< garbled-id sequence
  /// Scratch backing the zero-copy decode of the packet currently being
  /// handled; reused across deliveries (steady state: no allocation).
  proto::MessageArena arena_;
  FileIndex index_;
  std::unordered_map<SessionKey, Session> sessions_;
  SessionKey next_key_ = 1;
  std::uint32_t next_low_id_ = 1;
  sim::CounterSet counters_;
  net::DefenseStats defense_;
  /// Per-remote-node connect buckets (created lazily; defense only).
  std::unordered_map<net::NodeId, net::TokenBucket> connect_buckets_;
  /// Bounded inbound work queue (defense only; sheds oldest-first).
  std::deque<std::pair<SessionKey, net::Bytes>> inbox_;
  bool inbox_armed_ = false;
  bool running_ = false;
};

}  // namespace edhp::server
