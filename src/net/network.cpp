#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace edhp::net {

struct Endpoint::Shared {
  Network* net = nullptr;
  double latency = 0.0;  // one-way propagation delay, seconds
  bool open = true;
  std::weak_ptr<Endpoint> a;
  std::weak_ptr<Endpoint> b;
};

bool Endpoint::open() const noexcept { return shared_ && shared_->open; }

void Endpoint::send_sized(Bytes payload, std::size_t wire_size) {
  if (!open()) return;
  const std::size_t bytes_on_wire = std::max(wire_size, payload.size());
  Network& net = *shared_->net;
  auto& simulation = net.sim_;
  const double now = simulation.now();
  const double serialization =
      upload_bps_ > 0 ? static_cast<double>(bytes_on_wire) / upload_bps_ : 0.0;
  const double start = std::max(now, next_free_tx_);
  next_free_tx_ = start + serialization;
  const double arrival = next_free_tx_ + shared_->latency;

  std::weak_ptr<Endpoint> target = is_a_ ? shared_->b : shared_->a;
  auto shared = shared_;
  simulation.schedule_at(
      arrival, [target = std::move(target), payload = std::move(payload),
                bytes_on_wire, shared = std::move(shared)]() mutable {
        if (!shared->open) return;
        auto ep = target.lock();
        if (!ep || !ep->on_message_) return;
        shared->net->messages_delivered_ += 1;
        shared->net->bytes_delivered_ += bytes_on_wire;
        ep->on_message_(std::move(payload));
      });
}

void Endpoint::close() {
  if (!open()) return;
  auto shared = shared_;
  shared->open = false;
  std::weak_ptr<Endpoint> target = is_a_ ? shared->b : shared->a;
  shared->net->sim_.schedule_in(shared->latency,
                                [target = std::move(target)] {
                                  auto ep = target.lock();
                                  if (ep && ep->on_close_) ep->on_close_();
                                });
}

Network::Network(sim::Simulation& simulation, LinkModel model)
    : sim_(simulation), model_(model), rng_(simulation.rng().split(0x4e455457ull)) {}

NodeId Network::add_node(bool reachable, double tz_offset_hours,
                         std::optional<double> upload_bps) {
  const auto id = static_cast<NodeId>(nodes_.size());
  // Knuth multiplicative hash is a bijection on 32-bit ints, so every node
  // gets a distinct synthetic IP; add 1 so node 0 does not map to 0.0.0.0.
  std::uint32_t ip = (id + 1u) * 2654435761u;
  if (ip == 0) ip = 1;
  nodes_.push_back(NodeInfo{IpAddr(ip), 4662, reachable, tz_offset_hours});
  upload_bps_.push_back(upload_bps.value_or(model_.default_upload_bps));
  by_ip_.emplace(ip, id);
  return id;
}

std::optional<NodeId> Network::find_by_ip(std::uint32_t ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

const NodeInfo& Network::info(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network::info: unknown node");
  }
  return nodes_[id];
}

void Network::listen(NodeId id, AcceptHandler handler) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network::listen: unknown node");
  }
  listeners_[id] = std::move(handler);
}

void Network::stop_listening(NodeId id) { listeners_.erase(id); }

void Network::listen_datagram(NodeId id, DatagramHandler handler) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network::listen_datagram: unknown node");
  }
  datagram_listeners_[id] = std::move(handler);
}

void Network::stop_listening_datagram(NodeId id) {
  datagram_listeners_.erase(id);
}

void Network::send_datagram(NodeId from, NodeId to, Bytes payload) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Network::send_datagram: unknown node");
  }
  if (!nodes_[to].reachable || rng_.chance(model_.datagram_loss)) {
    return;  // silently lost, as UDP does
  }
  const double latency = std::max(
      model_.min_latency, rng_.lognormal(model_.latency_mu, model_.latency_sigma));
  sim_.schedule_in(latency, [this, from, to, payload = std::move(payload)]() mutable {
    auto it = datagram_listeners_.find(to);
    if (it == datagram_listeners_.end() || !it->second) return;
    messages_delivered_ += 1;
    bytes_delivered_ += payload.size();
    it->second(from, std::move(payload));
  });
}

void Network::connect(NodeId from, NodeId to, ConnectHandler done) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Network::connect: unknown node");
  }
  const double latency = std::max(
      model_.min_latency, rng_.lognormal(model_.latency_mu, model_.latency_sigma));

  auto listener = listeners_.find(to);
  const bool ok = nodes_[to].reachable && listener != listeners_.end();
  if (!ok) {
    // Failure is learned after a round trip (SYN, then RST / timeout).
    sim_.schedule_in(2 * latency, [done = std::move(done)] { done(nullptr); });
    return;
  }

  auto shared = std::make_shared<Endpoint::Shared>();
  shared->net = this;
  shared->latency = latency;

  auto side_a = std::make_shared<Endpoint>();
  side_a->local_ = from;
  side_a->remote_ = to;
  side_a->is_a_ = true;
  side_a->upload_bps_ = upload_bps_[from];
  side_a->shared_ = shared;

  auto side_b = std::make_shared<Endpoint>();
  side_b->local_ = to;
  side_b->remote_ = from;
  side_b->is_a_ = false;
  side_b->upload_bps_ = upload_bps_[to];
  side_b->shared_ = shared;

  shared->a = side_a;
  shared->b = side_b;

  // The acceptor sees the connection after one latency, the initiator's
  // completion fires after the full round trip.
  sim_.schedule_in(latency, [this, to, side_b] {
    auto it = listeners_.find(to);
    if (it != listeners_.end() && it->second) {
      it->second(side_b);
    }
  });
  sim_.schedule_in(2 * latency,
                   [done = std::move(done), side_a] { done(side_a); });
}

}  // namespace edhp::net
