#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace edhp::net {

struct Endpoint::Shared {
  /// One queued in-flight message.
  struct Delivery {
    double arrival = 0.0;       // absolute arrival time
    std::size_t wire = 0;       // accounted wire footprint
    Bytes payload;
  };
  /// One direction of the connection: a FIFO of in-flight messages drained
  /// by at most one scheduled simulation event (the head-of-line arrival).
  struct Direction {
    std::deque<Delivery> queue;
    bool armed = false;         // head-of-line event scheduled
  };

  Network* net = nullptr;
  double latency = 0.0;  // one-way propagation delay, seconds
  bool open = true;
  NodeId node_a = 0;     // initiator (for fault-layer RST matching)
  NodeId node_b = 0;     // acceptor
  std::weak_ptr<Endpoint> a;
  std::weak_ptr<Endpoint> b;
  Direction to_a;
  Direction to_b;
};

bool Endpoint::open() const noexcept { return shared_ && shared_->open; }

void Endpoint::send_sized(Bytes payload, std::size_t wire_size) {
  if (!open()) return;
  Network& net = *shared_->net;
  if (!net.corruptors_.empty()) {
    net.maybe_corrupt(local_, payload);
  }
  const std::size_t bytes_on_wire = std::max(wire_size, payload.size());
  const double now = net.sim_.now();
  const double serialization =
      upload_bps_ > 0 ? static_cast<double>(bytes_on_wire) / upload_bps_ : 0.0;
  const double start = std::max(now, next_free_tx_);
  next_free_tx_ = start + serialization;
  const double arrival = next_free_tx_ + shared_->latency;

  if (Network::NodeSlot* tx = net.slot_of(local_)) {
    tx->counters.messages_sent += 1;
    tx->counters.bytes_serialized += bytes_on_wire;
  }
  net.totals_.messages_sent += 1;
  net.totals_.bytes_serialized += bytes_on_wire;

  auto& direction = is_a_ ? shared_->to_b : shared_->to_a;
  direction.queue.push_back(
      Shared::Delivery{arrival, bytes_on_wire, std::move(payload)});
  if (!direction.armed) {
    net.arm_delivery(shared_, /*to_a=*/!is_a_);
  }
}

void Endpoint::close() {
  if (!open()) return;
  auto shared = shared_;
  shared->open = false;
  // In-flight data is dropped, like a RST; release payload memory now. Any
  // armed head-of-line event sees open == false and does nothing.
  shared->to_a.queue.clear();
  shared->to_b.queue.clear();
  std::weak_ptr<Endpoint> target = is_a_ ? shared->b : shared->a;
  shared->net->sim_.schedule_in(shared->latency,
                                [target = std::move(target)] {
                                  auto ep = target.lock();
                                  if (ep && ep->on_close_) ep->on_close_();
                                });
}

Network::Network(sim::Simulation& simulation, LinkModel model)
    : sim_(simulation), model_(model), rng_(simulation.rng().split(0x4e455457ull)) {}

Network::NodeSlot* Network::slot_of(NodeId id) noexcept {
  if (id >= node_slot_.size()) return nullptr;
  const std::uint32_t s = node_slot_[id];
  return s == kRetiredSlot ? nullptr : &node_slots_[s];
}

const Network::NodeSlot* Network::slot_of(NodeId id) const noexcept {
  if (id >= node_slot_.size()) return nullptr;
  const std::uint32_t s = node_slot_[id];
  return s == kRetiredSlot ? nullptr : &node_slots_[s];
}

Network::NodeSlot* Network::known_slot(NodeId id, const char* what) {
  if (id >= node_slot_.size()) {
    throw std::out_of_range(what);
  }
  return slot_of(id);
}

const Network::NodeSlot* Network::known_slot(NodeId id,
                                             const char* what) const {
  if (id >= node_slot_.size()) {
    throw std::out_of_range(what);
  }
  return slot_of(id);
}

void Network::arm_delivery(const std::shared_ptr<Endpoint::Shared>& shared,
                           bool to_a) {
  auto& direction = to_a ? shared->to_a : shared->to_b;
  direction.armed = true;
  sim_.schedule_at(direction.queue.front().arrival,
                   [this, shared, to_a] { deliver_head(shared, to_a); });
}

void Network::deliver_head(const std::shared_ptr<Endpoint::Shared>& shared,
                           bool to_a) {
  auto& direction = to_a ? shared->to_a : shared->to_b;
  direction.armed = false;
  if (!shared->open) {
    direction.queue.clear();
    return;
  }
  Endpoint::Shared::Delivery delivery = std::move(direction.queue.front());
  direction.queue.pop_front();
  // Chain the next arrival before invoking the handler, so handler-side
  // sends on the same connection append behind an already-armed head.
  if (!direction.queue.empty()) {
    arm_delivery(shared, to_a);
  }
  auto ep = (to_a ? shared->a : shared->b).lock();
  if (!ep || !ep->on_message_) return;
  if (NodeSlot* rx = slot_of(ep->local_)) {
    rx->counters.messages_delivered += 1;
    rx->counters.bytes_delivered += delivery.wire;
  }
  totals_.messages_delivered += 1;
  totals_.bytes_delivered += delivery.wire;
  ep->on_message_(std::move(delivery.payload));
}

NodeId Network::add_node(bool reachable, double tz_offset_hours,
                         std::optional<double> upload_bps) {
  const auto id = static_cast<NodeId>(node_slot_.size());
  // Knuth multiplicative hash is a bijection on 32-bit ints, so every node
  // gets a distinct synthetic IP; add 1 so node 0 does not map to 0.0.0.0.
  // Ids are never reused, so the id -> IP mapping is stable regardless of
  // how many earlier nodes were retired.
  std::uint32_t ip = (id + 1u) * 2654435761u;
  if (ip == 0) ip = 1;

  std::uint32_t s;
  if (free_node_head_ != kRetiredSlot) {
    s = free_node_head_;
    free_node_head_ = node_slots_[s].next_free;
    node_slots_[s] = NodeSlot{};
  } else {
    s = static_cast<std::uint32_t>(node_slots_.size());
    node_slots_.emplace_back();
  }
  NodeSlot& slot = node_slots_[s];
  slot.info = NodeInfo{IpAddr(ip), 4662, reachable, tz_offset_hours};
  slot.upload_bps = upload_bps.value_or(model_.default_upload_bps);
  node_slot_.push_back(s);
  by_ip_.emplace(ip, id);
  ++live_nodes_;
  peak_live_nodes_ = std::max(peak_live_nodes_, live_nodes_);
  return id;
}

void Network::retire_node(NodeId id) {
  if (id >= node_slot_.size()) {
    throw std::out_of_range("Network::retire_node: unknown node");
  }
  const std::uint32_t s = node_slot_[id];
  if (s == kRetiredSlot) return;  // idempotent
  NodeSlot& slot = node_slots_[s];
  by_ip_.erase(slot.info.ip.value());
  listeners_.erase(id);
  datagram_listeners_.erase(id);
  corruptors_.erase(id);
  node_slot_[id] = kRetiredSlot;
  slot = NodeSlot{};
  slot.next_free = free_node_head_;
  free_node_head_ = s;
  --live_nodes_;
  ++nodes_retired_;
}

bool Network::node_live(NodeId id) const noexcept {
  return id < node_slot_.size() && node_slot_[id] != kRetiredSlot;
}

void Network::set_node_up(NodeId id, bool up) {
  if (NodeSlot* slot = known_slot(id, "Network::set_node_up: unknown node")) {
    slot->up = up ? 1 : 0;
  }
}

bool Network::node_up(NodeId id) const {
  const NodeSlot* slot = known_slot(id, "Network::node_up: unknown node");
  return slot != nullptr && slot->up != 0;
}

std::uint64_t Network::link_key(NodeId a, NodeId b) noexcept {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return (hi << 32) | lo;
}

void Network::block_link(NodeId a, NodeId b) {
  if (a >= node_slot_.size() || b >= node_slot_.size()) {
    throw std::out_of_range("Network::block_link: unknown node");
  }
  blocked_links_.insert(link_key(a, b));
}

void Network::unblock_link(NodeId a, NodeId b) {
  blocked_links_.erase(link_key(a, b));
}

void Network::set_partition(NodeId id, std::uint32_t group) {
  if (NodeSlot* slot = known_slot(id, "Network::set_partition: unknown node")) {
    slot->partition = group;
  }
}

std::uint32_t Network::partition_of(NodeId id) const {
  const NodeSlot* slot = known_slot(id, "Network::partition_of: unknown node");
  return slot == nullptr ? 0 : slot->partition;
}

void Network::set_latency_factor(NodeId id, double factor) {
  if (NodeSlot* slot =
          known_slot(id, "Network::set_latency_factor: unknown node")) {
    slot->latency_factor = factor > 0 ? factor : 1.0;
  }
}

bool Network::link_usable(NodeId from, NodeId to) const {
  const NodeSlot* f = slot_of(from);
  const NodeSlot* t = slot_of(to);
  if (f == nullptr || t == nullptr || f->up == 0 || t->up == 0) return false;
  if (f->partition != t->partition) return false;
  return blocked_links_.empty() || !blocked_links_.contains(link_key(from, to));
}

double Network::latency_factor(NodeId from, NodeId to) const {
  const NodeSlot* f = slot_of(from);
  const NodeSlot* t = slot_of(to);
  return std::max(f == nullptr ? 1.0 : f->latency_factor,
                  t == nullptr ? 1.0 : t->latency_factor);
}

std::size_t Network::abort_matching(
    const std::function<bool(NodeId, NodeId)>& pred) {
  std::size_t aborted = 0;
  for (auto& weak : live_conns_) {
    auto shared = weak.lock();
    if (!shared || !shared->open) continue;
    if (!pred(shared->node_a, shared->node_b)) continue;
    shared->open = false;
    shared->to_a.queue.clear();
    shared->to_b.queue.clear();
    // Both sides observe the RST after one propagation delay.
    for (auto target : {shared->a, shared->b}) {
      sim_.schedule_in(shared->latency, [target = std::move(target)] {
        auto ep = target.lock();
        if (ep && ep->on_close_) ep->on_close_();
      });
    }
    if (NodeSlot* sa = slot_of(shared->node_a)) {
      sa->counters.connections_aborted += 1;
    }
    if (NodeSlot* sb = slot_of(shared->node_b)) {
      sb->counters.connections_aborted += 1;
    }
    totals_.connections_aborted += 1;
    ++aborted;
  }
  // Compact once most entries are dead so long campaigns stay O(live).
  if (live_conns_.size() > 64) {
    std::size_t alive = 0;
    for (const auto& weak : live_conns_) {
      if (!weak.expired()) ++alive;
    }
    if (alive < live_conns_.size() / 2) {
      std::erase_if(live_conns_, [](const auto& w) { return w.expired(); });
    }
  }
  return aborted;
}

std::size_t Network::abort_connections(NodeId id) {
  return abort_matching(
      [id](NodeId a, NodeId b) { return a == id || b == id; });
}

std::size_t Network::abort_link(NodeId a, NodeId b) {
  return abort_matching([a, b](NodeId x, NodeId y) {
    return (x == a && y == b) || (x == b && y == a);
  });
}

std::size_t Network::abort_cross_partition() {
  return abort_matching([this](NodeId a, NodeId b) {
    const NodeSlot* sa = slot_of(a);
    const NodeSlot* sb = slot_of(b);
    return (sa == nullptr ? 0 : sa->partition) !=
           (sb == nullptr ? 0 : sb->partition);
  });
}

void Network::set_corruption(NodeId id, const CorruptionSpec& spec) {
  if (known_slot(id, "Network::set_corruption: unknown node") == nullptr) {
    return;  // retired senders cannot transmit, let alone corrupt
  }
  corruptors_[id] = CorruptionState{spec, Rng(spec.seed)};
}

void Network::clear_corruption(NodeId id) { corruptors_.erase(id); }

void Network::maybe_corrupt(NodeId sender, Bytes& payload) {
  auto it = corruptors_.find(sender);
  if (it == corruptors_.end()) return;
  auto& state = it->second;
  bool touched = false;
  if (!payload.empty() && state.rng.chance(state.spec.flip)) {
    const std::size_t at = state.rng.below(payload.size());
    payload[at] ^= static_cast<std::uint8_t>(1u << state.rng.below(8));
    touched = true;
  }
  if (!payload.empty() && state.rng.chance(state.spec.truncate)) {
    payload.resize(state.rng.below(payload.size()));  // keep a random prefix
    touched = true;
  }
  if (state.rng.chance(state.spec.extend)) {
    const std::size_t extra = 1 + state.rng.below(16);
    for (std::size_t i = 0; i < extra; ++i) {
      payload.push_back(static_cast<std::uint8_t>(state.rng.below(256)));
    }
    touched = true;
  }
  if (touched) {
    if (NodeSlot* slot = slot_of(sender)) {
      slot->counters.messages_corrupted += 1;
    }
    totals_.messages_corrupted += 1;
  }
}

void Network::note_malformed(NodeId id) {
  if (NodeSlot* slot = known_slot(id, "Network::note_malformed: unknown node")) {
    slot->counters.malformed_packets += 1;
    totals_.malformed_packets += 1;
  }
}

std::optional<NodeId> Network::find_by_ip(std::uint32_t ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

const NodeInfo& Network::info(NodeId id) const {
  const NodeSlot* slot = known_slot(id, "Network::info: unknown node");
  if (slot == nullptr) {
    throw std::out_of_range("Network::info: retired node");
  }
  return slot->info;
}

const LinkCounters& Network::counters(NodeId id) const {
  const NodeSlot* slot = known_slot(id, "Network::counters: unknown node");
  if (slot == nullptr) {
    static const LinkCounters kRetired{};  // counters died with the node
    return kRetired;
  }
  return slot->counters;
}

void Network::listen(NodeId id, AcceptHandler handler) {
  if (known_slot(id, "Network::listen: unknown node") == nullptr) return;
  listeners_[id] = std::move(handler);
}

void Network::stop_listening(NodeId id) { listeners_.erase(id); }

void Network::listen_datagram(NodeId id, DatagramHandler handler) {
  if (known_slot(id, "Network::listen_datagram: unknown node") == nullptr) {
    return;
  }
  datagram_listeners_[id] = std::move(handler);
}

void Network::stop_listening_datagram(NodeId id) {
  datagram_listeners_.erase(id);
}

void Network::send_datagram(NodeId from, NodeId to, Bytes payload) {
  if (from >= node_slot_.size() || to >= node_slot_.size()) {
    throw std::out_of_range("Network::send_datagram: unknown node");
  }
  if (NodeSlot* tx = slot_of(from)) {
    tx->counters.datagrams_sent += 1;
  }
  totals_.datagrams_sent += 1;
  const NodeSlot* target = slot_of(to);
  // Short-circuit order matters for determinism: the loss draw only happens
  // when the link is usable, exactly as before node retirement existed, and
  // every burst/dup/reorder draw is gated behind its (default-zero) knob so
  // the i.i.d. model consumes the identical RNG sequence it always did.
  bool drop =
      !link_usable(from, to) || target == nullptr || !target->info.reachable;
  bool burst = false;
  if (!drop) {
    double loss = model_.datagram_loss;
    if (model_.ge_p_enter_bad > 0) {
      // Advance the sender's Gilbert–Elliott channel state one transition
      // per datagram; while bad, the burst loss probability applies.
      if (NodeSlot* tx = slot_of(from)) {
        if (tx->ge_bad != 0) {
          if (rng_.chance(model_.ge_p_exit_bad)) tx->ge_bad = 0;
        } else if (rng_.chance(model_.ge_p_enter_bad)) {
          tx->ge_bad = 1;
        }
        if (tx->ge_bad != 0) {
          loss = model_.ge_loss_bad;
          burst = true;
        }
      }
    }
    drop = rng_.chance(loss);
  }
  if (drop) {
    if (NodeSlot* tx = slot_of(from)) {
      tx->counters.datagrams_dropped += 1;
      if (burst) tx->counters.datagrams_dropped_burst += 1;
    }
    totals_.datagrams_dropped += 1;
    if (burst) totals_.datagrams_dropped_burst += 1;
    return;  // silently lost, as UDP does
  }
  double latency = std::max(
      model_.min_latency, rng_.lognormal(model_.latency_mu, model_.latency_sigma) *
                              latency_factor(from, to));
  if (model_.datagram_reorder > 0 && rng_.chance(model_.datagram_reorder)) {
    // Delayed past its natural slot: anything sent within reorder_delay
    // overtakes this copy.
    latency += model_.reorder_delay;
    if (NodeSlot* tx = slot_of(from)) tx->counters.datagrams_reordered += 1;
    totals_.datagrams_reordered += 1;
  }
  if (model_.datagram_dup > 0 && rng_.chance(model_.datagram_dup)) {
    const double dup_latency = std::max(
        model_.min_latency,
        rng_.lognormal(model_.latency_mu, model_.latency_sigma) *
            latency_factor(from, to));
    if (NodeSlot* tx = slot_of(from)) tx->counters.datagrams_duplicated += 1;
    totals_.datagrams_duplicated += 1;
    schedule_datagram_delivery(from, to, payload, dup_latency);
  }
  schedule_datagram_delivery(from, to, std::move(payload), latency);
}

void Network::schedule_datagram_delivery(NodeId from, NodeId to, Bytes payload,
                                         double latency) {
  sim_.schedule_in(latency, [this, from, to, payload = std::move(payload)]() mutable {
    auto it = datagram_listeners_.find(to);
    if (it == datagram_listeners_.end() || !it->second) {
      if (NodeSlot* tx = slot_of(from)) {
        tx->counters.datagrams_dropped += 1;
      }
      totals_.datagrams_dropped += 1;
      return;
    }
    if (NodeSlot* rx = slot_of(to)) {
      rx->counters.messages_delivered += 1;
      rx->counters.bytes_delivered += payload.size();
    }
    totals_.messages_delivered += 1;
    totals_.bytes_delivered += payload.size();
    it->second(from, std::move(payload));
  });
}

sim::ClockModel& Network::clock(NodeId id) {
  if (id >= node_slot_.size()) {
    throw std::out_of_range("Network::clock: unknown node");
  }
  return clocks_[id];
}

Time Network::local_time(NodeId id) const {
  if (clocks_.empty()) return sim_.now();
  const auto it = clocks_.find(id);
  return it == clocks_.end() ? sim_.now() : it->second.local(sim_.now());
}

void Network::connect(NodeId from, NodeId to, ConnectHandler done) {
  if (from >= node_slot_.size() || to >= node_slot_.size()) {
    throw std::out_of_range("Network::connect: unknown node");
  }
  if (NodeSlot* initiator = slot_of(from)) {
    initiator->counters.connects_initiated += 1;
  }
  totals_.connects_initiated += 1;
  const double latency = std::max(
      model_.min_latency, rng_.lognormal(model_.latency_mu, model_.latency_sigma) *
                              latency_factor(from, to));

  auto listener = listeners_.find(to);
  const NodeSlot* target = slot_of(to);
  const bool ok = link_usable(from, to) && target != nullptr &&
                  target->info.reachable && listener != listeners_.end();
  if (!ok) {
    if (NodeSlot* t = slot_of(to)) {
      t->counters.refusals += 1;
    }
    totals_.refusals += 1;
    // Failure is learned after a round trip (SYN, then RST / timeout).
    sim_.schedule_in(2 * latency, [done = std::move(done)] { done(nullptr); });
    return;
  }

  auto shared = std::make_shared<Endpoint::Shared>();
  shared->net = this;
  shared->latency = latency;
  shared->node_a = from;
  shared->node_b = to;
  if (live_conns_.size() >= conns_purge_at_) {
    std::erase_if(live_conns_, [](const auto& w) { return w.expired(); });
    conns_purge_at_ = std::max<std::size_t>(128, 2 * live_conns_.size());
  }
  live_conns_.push_back(shared);

  auto side_a = std::make_shared<Endpoint>();
  side_a->local_ = from;
  side_a->remote_ = to;
  side_a->is_a_ = true;
  side_a->upload_bps_ = slot_of(from)->upload_bps;
  side_a->shared_ = shared;

  auto side_b = std::make_shared<Endpoint>();
  side_b->local_ = to;
  side_b->remote_ = from;
  side_b->is_a_ = false;
  side_b->upload_bps_ = target->upload_bps;
  side_b->shared_ = shared;

  shared->a = side_a;
  shared->b = side_b;

  // The acceptor sees the connection after one latency, the initiator's
  // completion fires after the full round trip.
  sim_.schedule_in(latency, [this, to, side_b] {
    auto it = listeners_.find(to);
    if (it != listeners_.end() && it->second) {
      if (NodeSlot* t = slot_of(to)) {
        t->counters.connects_accepted += 1;
      }
      totals_.connects_accepted += 1;
      it->second(side_b);
    }
  });
  sim_.schedule_in(2 * latency,
                   [done = std::move(done), side_a] { done(side_a); });
}

}  // namespace edhp::net
