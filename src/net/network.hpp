#pragma once
// Simulated network substrate.
//
// Nodes are registered with the Network and may listen for incoming
// connections. A connection is a reliable, ordered, bidirectional message
// channel between two nodes; each side holds an Endpoint. Delivery delay is
// a per-connection latency (sampled once at establishment) plus a
// serialization delay proportional to payload size and the sender's upload
// bandwidth, so large transfers (random-content part uploads) take realistic
// time while handshakes are fast.
//
// Delivery uses per-connection queues: each direction of a connection keeps
// a FIFO of in-flight messages and at most ONE scheduled simulation event
// (the head-of-line arrival). Sending N messages therefore costs one heap
// entry, not N, and no per-message shared_ptr-capturing closure is
// allocated — the hot path of every campaign.
//
// Reachability models eDonkey's HighID/LowID distinction: a non-reachable
// (firewalled) node can open outgoing connections but cannot accept incoming
// ones.
//
// Fault injection (driven by fault::Injector) is layered on top without
// perturbing the fault-free path: a node can be marked down (connect refusal
// in both directions, datagram blackhole), a specific link can be blocked,
// nodes can be split into partition groups, per-node latency factors model
// congestion episodes, and established connections can be severed with RST
// semantics. None of these knobs consume the network's RNG stream unless a
// fault is actually active, so a run with no faults is bit-identical to one
// on a build without the fault layer.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "sim/clock_model.hpp"
#include "sim/simulation.hpp"

namespace edhp::net {

using NodeId = std::uint32_t;
using Bytes = std::vector<std::uint8_t>;

class Endpoint;
using EndpointPtr = std::shared_ptr<Endpoint>;

/// Static properties of a registered node.
struct NodeInfo {
  IpAddr ip;
  std::uint16_t port = 4662;
  bool reachable = true;      ///< can accept incoming connections (HighID)
  double tz_offset_hours = 0; ///< region, used by behaviour models
};

/// Configuration of the latency/bandwidth model.
struct LinkModel {
  double latency_mu = -3.0;      ///< lognormal mu of one-way latency (s)
  double latency_sigma = 0.45;   ///< lognormal sigma
  double min_latency = 0.005;    ///< floor (s)
  double default_upload_bps = 80.0 * 1024;  ///< 2008 ADSL uplink, bytes/s
  double datagram_loss = 0.02;   ///< UDP drop probability (good state)

  // --- Bursty loss: 2-state Gilbert–Elliott per *sender*. With
  // ge_p_enter_bad == 0 (the default) the chain never engages, no extra
  // RNG is drawn, and the i.i.d. model above applies unchanged — runs are
  // bit-identical to a build without the chain.
  double ge_p_enter_bad = 0.0;   ///< per-datagram good→bad transition prob
  double ge_p_exit_bad = 0.3;    ///< per-datagram bad→good transition prob
  double ge_loss_bad = 0.5;      ///< drop probability while in the bad state

  // --- Duplication and reordering (default-off ⇒ zero extra draws).
  double datagram_dup = 0.0;     ///< probability a datagram arrives twice
  double datagram_reorder = 0.0; ///< probability of a late (reordered) copy
  double reorder_delay = 0.25;   ///< extra latency for reordered datagrams (s)
};

/// Traffic counters, kept per node and aggregated network-wide.
struct LinkCounters {
  std::uint64_t connects_initiated = 0;  ///< connect() attempts from here
  std::uint64_t connects_accepted = 0;   ///< connections accepted here
  std::uint64_t refusals = 0;            ///< incoming attempts refused here
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_dropped = 0;   ///< lost, unreachable, or unheard
  std::uint64_t messages_sent = 0;       ///< stream messages queued here
  std::uint64_t messages_delivered = 0;  ///< stream messages received here
  std::uint64_t bytes_serialized = 0;    ///< wire bytes pushed by this node
  std::uint64_t bytes_delivered = 0;     ///< wire bytes received here
  std::uint64_t connections_aborted = 0; ///< established conns RST by faults
  std::uint64_t messages_corrupted = 0;  ///< payloads mangled on send here
  std::uint64_t malformed_packets = 0;   ///< received packets the decoder rejected
  std::uint64_t datagrams_dropped_burst = 0;  ///< dropped in the GE bad state
  std::uint64_t datagrams_duplicated = 0;     ///< extra copies delivered
  std::uint64_t datagrams_reordered = 0;      ///< copies delayed out of order
};

/// One side of an established connection. Handlers are invoked from the
/// simulation loop; an Endpoint stays valid as long as someone holds the
/// shared_ptr, but sends on a closed connection are silently dropped (as
/// with a real socket race).
class Endpoint {
 public:
  using MessageHandler = std::function<void(Bytes)>;
  using CloseHandler = std::function<void()>;

  /// Queue a message to the remote side.
  void send(Bytes payload) { send_sized(std::move(payload), 0); }

  /// Queue a message whose wire footprint is `wire_size` bytes even though
  /// only `payload` is materialized (used for bulk content blocks: a
  /// random-content honeypot "uploads" terabytes over a full measurement,
  /// which would be pointless to allocate). `wire_size` is clamped up to at
  /// least the payload size; timing and byte statistics use it.
  void send_sized(Bytes payload, std::size_t wire_size);

  /// Close both directions; the remote side learns after one latency.
  /// Messages still in flight are dropped, like a RST.
  void close();

  void on_message(MessageHandler h) { on_message_ = std::move(h); }
  void on_close(CloseHandler h) { on_close_ = std::move(h); }

  [[nodiscard]] bool open() const noexcept;
  [[nodiscard]] NodeId local_node() const noexcept { return local_; }
  [[nodiscard]] NodeId remote_node() const noexcept { return remote_; }

 private:
  friend class Network;
  struct Shared;  // state common to both endpoints

  NodeId local_ = 0;
  NodeId remote_ = 0;
  bool is_a_ = false;          ///< which side of the shared state we are
  double upload_bps_ = 0.0;    ///< sender bandwidth, cached at establishment
  std::shared_ptr<Shared> shared_;
  MessageHandler on_message_;
  CloseHandler on_close_;
  double next_free_tx_ = 0.0;  ///< sender-side serialization horizon
};

/// The registry of nodes plus connection establishment and statistics.
class Network {
 public:
  using AcceptHandler = std::function<void(EndpointPtr)>;
  using ConnectHandler = std::function<void(EndpointPtr)>;  ///< nullptr on failure

  Network(sim::Simulation& simulation, LinkModel model = {});

  /// Register a node; its IP is derived deterministically from the id.
  NodeId add_node(bool reachable, double tz_offset_hours = 0.0,
                  std::optional<double> upload_bps = std::nullopt);

  /// Forget a node that will never communicate again: its per-node state
  /// (info, counters, fault knobs, IP mapping, handlers) is released and the
  /// storage slot is recycled by the next add_node(). NodeIds are never
  /// reused, so later nodes keep the same deterministic IPs whether or not
  /// earlier ones were retired. Million-peer campaigns retire each peer node
  /// on reclaim, keeping network state proportional to the LIVE population.
  /// Retiring an already-retired id is a no-op; the id must be known.
  void retire_node(NodeId id);

  /// Whether `id` names a registered, not-yet-retired node.
  [[nodiscard]] bool node_live(NodeId id) const noexcept;

  [[nodiscard]] const NodeInfo& info(NodeId id) const;
  /// Total ids ever registered (monotonic; includes retired nodes).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_slot_.size();
  }
  /// Currently live (registered, not retired) nodes.
  [[nodiscard]] std::size_t live_node_count() const noexcept {
    return live_nodes_;
  }
  /// High-water mark of simultaneously live nodes — the structural memory
  /// bound of a campaign, independent of how many peers EVER existed.
  [[nodiscard]] std::size_t peak_live_node_count() const noexcept {
    return peak_live_nodes_;
  }
  [[nodiscard]] std::uint64_t nodes_retired() const noexcept {
    return nodes_retired_;
  }

  /// Node owning a given IP (peers resolve FOUND-SOURCES entries, whose
  /// HighID *is* the provider's address, to a connection target).
  [[nodiscard]] std::optional<NodeId> find_by_ip(std::uint32_t ip) const;

  /// Start (or replace) accepting connections on `id`.
  void listen(NodeId id, AcceptHandler handler);
  void stop_listening(NodeId id);

  /// Attempt to connect; `done` fires after the connection round-trip with
  /// the local endpoint, or with nullptr if the target is unreachable or not
  /// listening. A target that stops listening between the SYN and the
  /// accept never sees the connection, but the initiator still receives an
  /// endpoint (the handshake completed at transport level); its messages go
  /// unanswered, as against a crashed acceptor.
  void connect(NodeId from, NodeId to, ConnectHandler done);

  // --- Datagrams (UDP): unreliable, connectionless -------------------------

  using DatagramHandler = std::function<void(NodeId from, Bytes)>;

  /// Receive datagrams on `id` (replaces any previous handler).
  void listen_datagram(NodeId id, DatagramHandler handler);
  void stop_listening_datagram(NodeId id);

  /// Fire-and-forget datagram: delivered after one latency unless dropped
  /// (LinkModel::datagram_loss) or the target has no datagram handler or is
  /// unreachable. The sender learns nothing either way.
  void send_datagram(NodeId from, NodeId to, Bytes payload);

  // --- Fault-injection primitives (see fault::Injector) --------------------

  /// Mark a node down or up. A down node refuses incoming connection
  /// attempts, cannot initiate new ones, and neither sends nor receives
  /// datagrams. Established connections are untouched; pair with
  /// abort_connections() for crash semantics.
  void set_node_up(NodeId id, bool up);
  [[nodiscard]] bool node_up(NodeId id) const;

  /// Block / unblock the (unordered) link between two nodes: connects refuse
  /// and datagrams vanish, in both directions.
  void block_link(NodeId a, NodeId b);
  void unblock_link(NodeId a, NodeId b);

  /// Assign a node to a partition group (default 0). Nodes in different
  /// groups cannot connect or exchange datagrams; existing cross-group
  /// connections survive until aborted (see abort_cross_partition()).
  void set_partition(NodeId id, std::uint32_t group);
  [[nodiscard]] std::uint32_t partition_of(NodeId id) const;

  /// Multiplier applied to latency samples of new connections and datagrams
  /// involving this node (the larger factor of the two ends wins). 1.0
  /// restores the base model; factors never consume extra RNG draws.
  void set_latency_factor(NodeId id, double factor);

  // --- Virtual clocks (see fault clock_drift/clock_step/clock_freeze) ------

  /// Mutable per-node clock, created on demand. Driving it is the fault
  /// injector's job; mutators consume no RNG and schedule no events.
  [[nodiscard]] sim::ClockModel& clock(NodeId id);

  /// The node's local wall-clock reading of the current instant. Identity
  /// (bit-exactly simulation().now()) for every node no clock fault ever
  /// touched — the common case costs one empty-map check.
  [[nodiscard]] Time local_time(NodeId id) const;

  /// Sever every established connection touching `id`: both sides observe a
  /// RST (on_close) after one propagation latency, in-flight data is lost.
  /// Returns the number of connections aborted.
  std::size_t abort_connections(NodeId id);
  /// Sever established connections between `a` and `b` specifically.
  std::size_t abort_link(NodeId a, NodeId b);
  /// Sever every established connection whose ends sit in different
  /// partition groups.
  std::size_t abort_cross_partition();

  // --- Adversarial-traffic primitives (see fault::AbuseInjector) -----------

  /// Wire-corruption profile for a hostile sender. Each probability is
  /// evaluated independently per stream message, drawing from a per-node RNG
  /// seeded at set_corruption() time — never from the network's own stream,
  /// so registering and clearing corruptors cannot shift benign traffic.
  struct CorruptionSpec {
    double flip = 0.0;      ///< flip one random bit of the payload
    double truncate = 0.0;  ///< drop a random-length tail
    double extend = 0.0;    ///< append 1..16 random bytes
    std::uint64_t seed = 1; ///< seeds the per-node mutation stream
  };

  /// While active on `id`, every stream payload it sends may be mutated in
  /// flight (counted in LinkCounters::messages_corrupted on the sender).
  void set_corruption(NodeId id, const CorruptionSpec& spec);
  void clear_corruption(NodeId id);

  /// Record that `id` received a packet its decoder rejected. Pure counter:
  /// every DecodeError catch site reports here so malformed traffic is
  /// visible per node instead of being swallowed silently.
  void note_malformed(NodeId id);

  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }

  /// Aggregate counters over all nodes.
  [[nodiscard]] const LinkCounters& totals() const noexcept { return totals_; }
  /// Per-node counters.
  [[nodiscard]] const LinkCounters& counters(NodeId id) const;

  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return totals_.messages_delivered;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return totals_.bytes_delivered;
  }

 private:
  friend class Endpoint;

  /// Schedule (or chain) the head-of-line delivery event for one direction
  /// of a connection.
  void arm_delivery(const std::shared_ptr<Endpoint::Shared>& shared, bool to_a);
  void deliver_head(const std::shared_ptr<Endpoint::Shared>& shared, bool to_a);

  /// Whether traffic may flow between two nodes (both up, link not blocked,
  /// same partition group). Never consumes RNG.
  [[nodiscard]] bool link_usable(NodeId from, NodeId to) const;
  /// Schedule one datagram copy for delivery after `latency` seconds.
  void schedule_datagram_delivery(NodeId from, NodeId to, Bytes payload,
                                  double latency);
  /// Apply a registered corruption profile to an outgoing payload. No-op
  /// (and no RNG draw) unless `sender` has an active CorruptionSpec.
  void maybe_corrupt(NodeId sender, Bytes& payload);
  /// Effective latency factor of a path (max of the two ends).
  [[nodiscard]] double latency_factor(NodeId from, NodeId to) const;
  static std::uint64_t link_key(NodeId a, NodeId b) noexcept;
  /// RST every live registered connection matching `pred`; returns count.
  std::size_t abort_matching(
      const std::function<bool(NodeId, NodeId)>& pred);

  static constexpr std::uint32_t kRetiredSlot = 0xFFFFFFFFu;

  /// Per-node state lives in a recycling slab; `node_slot_` maps the
  /// monotonically growing NodeId space onto slab slots so retired nodes
  /// cost 4 bytes instead of a full record. Slots are reused through an
  /// intrusive free list.
  struct NodeSlot {
    NodeInfo info;
    double upload_bps = 0.0;
    double latency_factor = 1.0;
    std::uint32_t partition = 0;
    std::uint8_t up = 1;
    std::uint8_t ge_bad = 0;  ///< sender-side Gilbert–Elliott channel state
    std::uint32_t next_free = kRetiredSlot;
    LinkCounters counters;
  };

  /// Slot of a live node, nullptr for retired or unknown ids.
  [[nodiscard]] NodeSlot* slot_of(NodeId id) noexcept;
  [[nodiscard]] const NodeSlot* slot_of(NodeId id) const noexcept;
  /// Slot of a known id (throws out_of_range with `what` for unknown ids),
  /// nullptr when the node is retired.
  NodeSlot* known_slot(NodeId id, const char* what);
  [[nodiscard]] const NodeSlot* known_slot(NodeId id, const char* what) const;

  sim::Simulation& sim_;
  LinkModel model_;
  Rng rng_;
  std::vector<std::uint32_t> node_slot_;  ///< NodeId -> slab slot / kRetiredSlot
  std::vector<NodeSlot> node_slots_;
  std::uint32_t free_node_head_ = kRetiredSlot;
  std::size_t live_nodes_ = 0;
  std::size_t peak_live_nodes_ = 0;
  std::uint64_t nodes_retired_ = 0;
  std::unordered_set<std::uint64_t> blocked_links_;
  /// Active wire-corruptors, keyed by sender; each carries its own RNG so
  /// mutation draws never touch rng_ (see maybe_corrupt()).
  struct CorruptionState {
    CorruptionSpec spec;
    Rng rng;
  };
  std::unordered_map<NodeId, CorruptionState> corruptors_;
  /// Weak registry of established connections for fault RSTs; compacted
  /// opportunistically when mostly expired.
  std::vector<std::weak_ptr<Endpoint::Shared>> live_conns_;
  std::size_t conns_purge_at_ = 128;
  std::unordered_map<std::uint32_t, NodeId> by_ip_;
  std::unordered_map<NodeId, AcceptHandler> listeners_;
  std::unordered_map<NodeId, DatagramHandler> datagram_listeners_;
  /// Sparse: only nodes a clock fault actually touched carry a model, so
  /// chaos-off campaigns never pay a lookup beyond one empty() check.
  std::unordered_map<NodeId, sim::ClockModel> clocks_;
  LinkCounters totals_;
};

}  // namespace edhp::net
