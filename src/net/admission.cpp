#include "net/admission.hpp"

#include <algorithm>

namespace edhp::net {

DefenseStats& DefenseStats::operator+=(const DefenseStats& other) noexcept {
  accepted += other.accepted;
  shed += other.shed;
  rate_limited += other.rate_limited;
  reaped += other.reaped;
  malformed += other.malformed;
  queue_dropped += other.queue_dropped;
  return *this;
}

TokenBucket::TokenBucket(double rate_per_sec, double burst, Time now)
    : rate_(rate_per_sec), burst_(std::max(burst, 1.0)), tokens_(burst_),
      last_(now) {}

bool TokenBucket::try_take(Time now, double cost) {
  if (rate_ <= 0.0) return true;
  if (now > last_) {
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

}  // namespace edhp::net
