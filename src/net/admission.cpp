#include "net/admission.hpp"

#include <algorithm>
#include <cmath>

namespace edhp::net {

DefenseStats& DefenseStats::operator+=(const DefenseStats& other) noexcept {
  accepted += other.accepted;
  shed += other.shed;
  rate_limited += other.rate_limited;
  reaped += other.reaped;
  malformed += other.malformed;
  queue_dropped += other.queue_dropped;
  return *this;
}

namespace {

constexpr std::uint64_t kMicro = 1'000'000;

std::uint64_t to_micro(double v) {
  return static_cast<std::uint64_t>(std::llround(v * 1e6));
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst, Time now)
    : rate_utok_(rate_per_sec > 0.0 ? to_micro(rate_per_sec) : 0),
      burst_utok_(to_micro(std::max(burst, 1.0))),
      tokens_utok_(burst_utok_),
      last_us_(to_micro(std::max(now, 0.0))),
      unlimited_(rate_per_sec <= 0.0) {}

bool TokenBucket::try_take(Time now, double cost) {
  if (unlimited_) return true;
  const std::uint64_t now_us = to_micro(std::max(now, 0.0));
  if (now_us > last_us_) {
    const std::uint64_t elapsed = now_us - last_us_;
    // µs × µtok/s overflows u64 after ~weeks of idle at typical rates;
    // saturate to a full bucket instead of wrapping (the idle session has
    // earned at least a burst by then, by any arithmetic).
    if (elapsed > (~0ull - rem_utok_us_) / rate_utok_) {
      tokens_utok_ = burst_utok_;
      rem_utok_us_ = 0;
    } else {
      const std::uint64_t total = elapsed * rate_utok_ + rem_utok_us_;
      tokens_utok_ = std::min(burst_utok_, tokens_utok_ + total / kMicro);
      rem_utok_us_ = tokens_utok_ == burst_utok_ ? 0 : total % kMicro;
    }
    last_us_ = now_us;
  }
  const std::uint64_t cost_utok = to_micro(cost);
  if (tokens_utok_ < cost_utok) return false;
  tokens_utok_ -= cost_utok;
  return true;
}

}  // namespace edhp::net
