#pragma once
// Admission control against adversarial traffic, shared by the server and
// the honeypots.
//
// The 2008 open eDonkey network delivered not only benign queries but also
// floods, half-open sessions and garbage bytes; a measurement platform has
// to keep logging through all of it. This header holds the pieces both
// defenders use: a lazily-refilled token bucket, the knob set
// (DefenseConfig) and the decision counters (DefenseStats).
//
// Determinism contract: none of these defenses consume an RNG stream, and
// with `enabled == false` the owning node schedules no extra events and
// takes no extra branches that alter traffic — a defense-off run stays
// bit-identical to a build without this layer.

#include <cstddef>
#include <cstdint>

#include "common/clock.hpp"

namespace edhp::net {

/// Defense knobs for one listening node. Defaults are tuned so that benign
/// campaign traffic never trips them (sessions stay far below the cap,
/// legit peers send well under the bucket rate) while the abuse classes in
/// fault::AbuseConfig all do.
struct DefenseConfig {
  bool enabled = false;

  /// Session cap with LIFO shedding: once this many sessions are live, the
  /// newest arrival is shed — established (older) sessions, which carry the
  /// measurement, are never sacrificed to a flood.
  std::size_t max_sessions = 256;

  /// Per-remote-node connect token bucket (refill per second / burst).
  /// A rate <= 0 disables the bucket.
  double connect_rate = 0.5;
  double connect_burst = 12.0;

  /// Per-session message token bucket; messages beyond it are dropped
  /// (counted, not fatal — a later in-budget message still works).
  double message_rate = 8.0;
  double message_burst = 80.0;

  /// A session that has not produced one valid message within this window
  /// is reaped (kills flood holds and pre-HELLO slowloris).
  Duration handshake_timeout = 30.0;
  /// A session idle this long after its last valid message is reaped. Must
  /// exceed every benign quiet period (the honeypot's 30-minute OFFER
  /// keep-alive on its server link being the longest).
  Duration idle_timeout = hours(2);

  /// Bounded inbound work queue: packets beyond this are shed oldest-first,
  /// and at most `queue_batch` packets are decoded per service slice.
  std::size_t max_queue = 512;
  std::size_t queue_batch = 64;
  Duration queue_service = 0.05;
};

/// One counter per defense decision, aggregated per defender and summed
/// fleet-wide into scenario::ScenarioResult.
struct DefenseStats {
  std::uint64_t accepted = 0;      ///< connections admitted past all gates
  std::uint64_t shed = 0;          ///< LIFO-shed at the session cap
  std::uint64_t rate_limited = 0;  ///< bucket rejections (connects + messages)
  std::uint64_t reaped = 0;        ///< handshake / idle timeouts fired
  std::uint64_t malformed = 0;     ///< packets the decoder rejected
  std::uint64_t queue_dropped = 0; ///< inbound packets shed oldest-first

  DefenseStats& operator+=(const DefenseStats& other) noexcept;
};

/// Classic token bucket with lazy refill: no timer, no RNG; refilled from
/// the elapsed simulation time on each take attempt. A rate <= 0 means
/// "unlimited" (try_take always succeeds).
///
/// Internally the bucket runs on u64 fixed point — time in integer
/// microseconds, tokens in micro-tokens (1 token = 1'000'000 µtok) — with a
/// remainder accumulator so sub-µtoken-per-µs rates refill exactly. The
/// refill SATURATES: when `elapsed_µs × rate` would exceed u64 range (a
/// session idle for weeks at campaign scale), the bucket simply fills to
/// burst instead of wrapping and starving a well-behaved peer.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst, Time now);

  /// Take `cost` tokens if available at time `now`.
  [[nodiscard]] bool try_take(Time now, double cost = 1.0);

  /// Whole tokens currently available (diagnostics/tests).
  [[nodiscard]] double tokens() const noexcept {
    return static_cast<double>(tokens_utok_) / 1e6;
  }

 private:
  std::uint64_t rate_utok_ = 0;    ///< µtokens refilled per second
  std::uint64_t burst_utok_ = 0;   ///< bucket capacity in µtokens
  std::uint64_t tokens_utok_ = 0;  ///< current fill in µtokens
  std::uint64_t rem_utok_us_ = 0;  ///< refill remainder (µtok·µs carry)
  std::uint64_t last_us_ = 0;      ///< last refill instant in µs
  bool unlimited_ = true;
};

}  // namespace edhp::net
